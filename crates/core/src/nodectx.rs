//! Engine-agnostic marking: the [`NodeCtx`] seam and the [`UnitMarker`].
//!
//! The per-unit embedding/detection decision — keyed selection, bit
//! assignment, whitening, value marking through the type plug-ins, order
//! marking — is independent of *how* the unit's value nodes are stored.
//! [`NodeCtx`]/[`NodeCtxMut`] abstract that storage: the DOM pipeline
//! implements them over a full [`Document`] ([`DomNodes`],
//! [`DomNodesMut`]), and the `wmx-stream` engine implements them over
//! per-record mini-documents. [`UnitMarker`] holds the keyed PRF and
//! performs the actual mark/extract against any context, which is what
//! guarantees bit-for-bit identical output between the two engines.

use crate::embed::plugin_for;
use crate::identifier::MarkKind;
use crate::wm::Watermark;
use crate::WmError;
use wmx_crypto::{Prf, PrfInput, SecretKey};
use wmx_xml::Document;
use wmx_xpath::NodeRef;

/// Read access to the value nodes of one markable unit.
pub trait NodeCtx {
    /// Number of value nodes in the unit (≥ 1 for enumerated units).
    fn node_count(&self) -> usize;

    /// String value of the `i`-th node (`None` when out of range).
    fn node_value(&self, i: usize) -> Option<String>;

    /// Whether the first two value nodes are reorderable siblings —
    /// element nodes sharing a parent, so an order mark can be embedded.
    fn can_reorder(&self) -> bool;
}

/// Write access to the value nodes of one markable unit.
pub trait NodeCtxMut: NodeCtx {
    /// Overwrites the `i`-th node's value.
    fn write_node_value(&mut self, i: usize, value: &str) -> Result<(), WmError>;

    /// Swaps the first two value nodes in their parent's child order.
    fn swap_first_two(&mut self) -> Result<(), WmError>;
}

fn dom_can_reorder(doc: &Document, nodes: &[NodeRef]) -> bool {
    let (Some(NodeRef::Node(a)), Some(NodeRef::Node(b))) = (nodes.first(), nodes.get(1)) else {
        return false; // attribute-valued or missing: order is meaningless
    };
    doc.parent(*a).is_some() && doc.parent(*a) == doc.parent(*b)
}

/// Read-only DOM-backed unit context (detection side).
pub struct DomNodes<'a> {
    doc: &'a Document,
    nodes: &'a [NodeRef],
}

impl<'a> DomNodes<'a> {
    /// Wraps the unit's nodes within `doc`.
    pub fn new(doc: &'a Document, nodes: &'a [NodeRef]) -> Self {
        DomNodes { doc, nodes }
    }
}

impl NodeCtx for DomNodes<'_> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node_value(&self, i: usize) -> Option<String> {
        self.nodes.get(i).map(|n| n.string_value(self.doc))
    }

    fn can_reorder(&self) -> bool {
        dom_can_reorder(self.doc, self.nodes)
    }
}

/// Mutable DOM-backed unit context (embedding side).
pub struct DomNodesMut<'a> {
    doc: &'a mut Document,
    nodes: &'a [NodeRef],
}

impl<'a> DomNodesMut<'a> {
    /// Wraps the unit's nodes within `doc`.
    pub fn new(doc: &'a mut Document, nodes: &'a [NodeRef]) -> Self {
        DomNodesMut { doc, nodes }
    }
}

impl NodeCtx for DomNodesMut<'_> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node_value(&self, i: usize) -> Option<String> {
        self.nodes.get(i).map(|n| n.string_value(self.doc))
    }

    fn can_reorder(&self) -> bool {
        dom_can_reorder(self.doc, self.nodes)
    }
}

impl NodeCtxMut for DomNodesMut<'_> {
    fn write_node_value(&mut self, i: usize, value: &str) -> Result<(), WmError> {
        let node = self
            .nodes
            .get(i)
            .ok_or_else(|| WmError::new("unit node index out of range"))?;
        crate::write_value(self.doc, node, value)
    }

    fn swap_first_two(&mut self) -> Result<(), WmError> {
        let (Some(NodeRef::Node(a)), Some(NodeRef::Node(b))) =
            (self.nodes.first(), self.nodes.get(1))
        else {
            return Err(WmError::new("order unit nodes are not elements"));
        };
        let parent = self
            .doc
            .parent(*a)
            .ok_or_else(|| WmError::new("order unit node lost its parent"))?;
        let ia = self
            .doc
            .child_index(*a)
            .ok_or_else(|| WmError::new("order unit node lost its parent"))?;
        let ib = self
            .doc
            .child_index(*b)
            .ok_or_else(|| WmError::new("order unit node lost its parent"))?;
        self.doc.swap_children(parent, ia, ib);
        Ok(())
    }
}

/// The votes one unit contributes to detection: whitened bit values for
/// the unit's assigned watermark bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitVotes {
    /// The watermark bit index the unit carries.
    pub bit_index: usize,
    /// One whitened vote per readable node (empty when unreadable).
    pub bits: Vec<bool>,
}

/// The keyed per-unit mark/extract engine shared by the DOM and
/// streaming pipelines.
pub struct UnitMarker {
    prf: Prf,
}

impl UnitMarker {
    /// Creates a marker for `key`.
    pub fn new(key: SecretKey) -> Self {
        UnitMarker { prf: Prf::new(key) }
    }

    /// The underlying PRF.
    pub fn prf(&self) -> &Prf {
        &self.prf
    }

    /// Whether the unit is selected at density 1/γ. The unit id may be
    /// any [`PrfInput`] — the persisted `&str` form or the compact
    /// [`crate::identifier::UnitKey`] view; equal byte streams make
    /// equal decisions.
    pub fn is_selected<I: PrfInput + ?Sized>(&self, unit_id: &I, gamma: u32) -> bool {
        self.prf.is_selected(unit_id, gamma)
    }

    /// The physically stored (whitened) bit for the unit.
    pub fn stored_bit<I: PrfInput + ?Sized>(&self, unit_id: &I, watermark: &Watermark) -> bool {
        let index = self.prf.bit_index(unit_id, watermark.len());
        watermark.bit(index) ^ self.prf.whiten_bit(unit_id)
    }

    /// Writes the unit's assigned bit into `ctx`. Returns the number of
    /// nodes rewritten/reordered (0 when the unit cannot carry the bit:
    /// unmarkable values, equal order values, non-reorderable nodes).
    pub fn mark_unit<I: PrfInput + ?Sized>(
        &self,
        ctx: &mut dyn NodeCtxMut,
        unit_id: &I,
        mark: MarkKind,
        watermark: &Watermark,
    ) -> Result<usize, WmError> {
        let bit = self.stored_bit(unit_id, watermark);
        let nonce = self.prf.value_nonce(unit_id);
        match mark {
            MarkKind::Value(data_type) => {
                let plugin = plugin_for(data_type);
                let mut marked = 0usize;
                for i in 0..ctx.node_count() {
                    let value = ctx.node_value(i).expect("index within node_count");
                    if let Some(new_value) = plugin.embed(&value, bit, nonce) {
                        if new_value != value {
                            ctx.write_node_value(i, &new_value)?;
                        }
                        marked += 1;
                    }
                }
                Ok(marked)
            }
            MarkKind::SiblingOrder => {
                if !ctx.can_reorder() {
                    return Ok(0);
                }
                let a = ctx.node_value(0).expect("can_reorder implies two nodes");
                let b = ctx.node_value(1).expect("can_reorder implies two nodes");
                if a == b {
                    return Ok(0); // equal values cannot encode an order
                }
                let current_bit = a > b; // descending = 1
                if current_bit != bit {
                    ctx.swap_first_two()?;
                }
                Ok(2)
            }
        }
    }

    /// Extracts the unit's votes from `ctx` (detection side): one
    /// whitened bit per readable node, under the unit's assigned bit
    /// index for a watermark of `wm_len` bits.
    pub fn extract_unit<I: PrfInput + ?Sized>(
        &self,
        ctx: &dyn NodeCtx,
        unit_id: &I,
        mark: MarkKind,
        wm_len: usize,
    ) -> UnitVotes {
        let bit_index = self.prf.bit_index(unit_id, wm_len);
        let whiten = self.prf.whiten_bit(unit_id);
        let nonce = self.prf.value_nonce(unit_id);
        let mut bits = Vec::new();
        match mark {
            MarkKind::Value(data_type) => {
                let plugin = plugin_for(data_type);
                for i in 0..ctx.node_count() {
                    let value = ctx.node_value(i).expect("index within node_count");
                    if let Some(raw) = plugin.extract(&value, nonce) {
                        bits.push(raw ^ whiten);
                    }
                }
            }
            MarkKind::SiblingOrder => {
                if let (Some(a), Some(b)) = (ctx.node_value(0), ctx.node_value(1)) {
                    if a != b {
                        bits.push((a > b) ^ whiten);
                    }
                }
            }
        }
        UnitVotes { bit_index, bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_schema::DataType;
    use wmx_xpath::Query;

    fn doc() -> Document {
        wmx_xml::parse(r#"<db><book p="mkp"><a>Zed</a><a>Ann</a><year>1998</year></book></db>"#)
            .unwrap()
    }

    fn marker() -> UnitMarker {
        UnitMarker::new(SecretKey::from_passphrase("ctx"))
    }

    #[test]
    fn value_mark_roundtrips_through_dom_ctx() {
        let mut d = doc();
        let nodes = Query::compile("/db/book/year").unwrap().select(&d);
        let wm = Watermark::parse("1011").unwrap();
        let m = marker();
        let marked = m
            .mark_unit(
                &mut DomNodesMut::new(&mut d, &nodes),
                "unit-1",
                MarkKind::Value(DataType::Integer),
                &wm,
            )
            .unwrap();
        assert_eq!(marked, 1);
        let votes = m.extract_unit(
            &DomNodes::new(&d, &nodes),
            "unit-1",
            MarkKind::Value(DataType::Integer),
            wm.len(),
        );
        assert_eq!(votes.bits.len(), 1);
        // The whitened vote equals the watermark bit at the unit's index.
        assert_eq!(votes.bits[0], wm.bit(votes.bit_index));
    }

    #[test]
    fn order_mark_swaps_and_extracts() {
        let mut d = doc();
        let nodes = Query::compile("/db/book/a").unwrap().select(&d);
        let wm = Watermark::parse("10").unwrap();
        let m = marker();
        let marked = m
            .mark_unit(
                &mut DomNodesMut::new(&mut d, &nodes),
                "ord-unit",
                MarkKind::SiblingOrder,
                &wm,
            )
            .unwrap();
        assert_eq!(marked, 2);
        // Re-select after the potential swap.
        let nodes = Query::compile("/db/book/a").unwrap().select(&d);
        let votes = m.extract_unit(
            &DomNodes::new(&d, &nodes),
            "ord-unit",
            MarkKind::SiblingOrder,
            wm.len(),
        );
        assert_eq!(votes.bits, vec![wm.bit(votes.bit_index)]);
    }

    #[test]
    fn non_reorderable_units_are_skipped() {
        let mut d = doc();
        // An attribute node and an element node: not reorderable.
        let mut nodes = Query::compile("/db/book/@p").unwrap().select(&d);
        nodes.extend(Query::compile("/db/book/year").unwrap().select(&d));
        let wm = Watermark::parse("1").unwrap();
        let m = marker();
        assert!(!DomNodes::new(&d, &nodes).can_reorder());
        let marked = m
            .mark_unit(
                &mut DomNodesMut::new(&mut d, &nodes),
                "u",
                MarkKind::SiblingOrder,
                &wm,
            )
            .unwrap();
        assert_eq!(marked, 0);
    }

    #[test]
    fn equal_order_values_unmarkable_and_voteless() {
        let mut d = wmx_xml::parse(r#"<db><book><a>Same</a><a>Same</a></book></db>"#).unwrap();
        let nodes = Query::compile("/db/book/a").unwrap().select(&d);
        let m = marker();
        let wm = Watermark::parse("1").unwrap();
        let marked = m
            .mark_unit(
                &mut DomNodesMut::new(&mut d, &nodes),
                "u",
                MarkKind::SiblingOrder,
                &wm,
            )
            .unwrap();
        assert_eq!(marked, 0);
        let votes = m.extract_unit(&DomNodes::new(&d, &nodes), "u", MarkKind::SiblingOrder, 1);
        assert!(votes.bits.is_empty());
    }
}
