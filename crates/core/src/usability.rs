//! The usability metric.
//!
//! §2.1: "WmXML uses the correctness of query results to measure the
//! usability of XML data. … After watermarking or attacks, if a certain
//! fraction of the results to these query templates are destroyed, the
//! usability of the XML data is regarded destroyed."
//!
//! [`measure_usability`] evaluates every template instantiation on the
//! original document (ground truth) and on the modified document, and
//! reports the fraction still answered correctly. Comparison respects
//! the owner's declared [tolerances](crate::config::Tolerance): a year
//! moved by ±1 or an image with flipped LSBs still *answers the query
//! correctly* in the owner's terms — that is precisely what makes the
//! watermark imperceptible.

use crate::config::{EncoderConfig, Tolerance};
use crate::template::QueryTemplate;
use crate::WmError;
use wmx_rewrite::SchemaBinding;
use wmx_xml::Document;

/// Usability of one template.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateUsability {
    /// Template name.
    pub template: String,
    /// Number of instantiations (distinct key values in the original).
    pub instantiations: usize,
    /// Instantiations still answered correctly.
    pub correct: usize,
}

impl TemplateUsability {
    /// Correct fraction (1.0 for templates with no instantiations).
    pub fn fraction(&self) -> f64 {
        if self.instantiations == 0 {
            1.0
        } else {
            self.correct as f64 / self.instantiations as f64
        }
    }
}

/// Usability report across all templates.
#[derive(Debug, Clone, PartialEq)]
pub struct UsabilityReport {
    /// Per-template results.
    pub per_template: Vec<TemplateUsability>,
}

impl UsabilityReport {
    /// Overall usability: correct instantiations over all instantiations.
    pub fn overall(&self) -> f64 {
        let total: usize = self.per_template.iter().map(|t| t.instantiations).sum();
        let correct: usize = self.per_template.iter().map(|t| t.correct).sum();
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Whether usability clears `threshold` (e.g. 0.9).
    pub fn is_usable(&self, threshold: f64) -> bool {
        self.overall() >= threshold
    }
}

/// Measures usability of `modified` relative to `original`.
///
/// The two documents may live under different schemas (re-organization
/// attack): pass each document's own binding. The tolerance for each
/// template's result attribute is taken from `config` (attributes not
/// declared markable are compared exactly).
pub fn measure_usability(
    original: &Document,
    original_binding: &SchemaBinding,
    modified: &Document,
    modified_binding: &SchemaBinding,
    templates: &[QueryTemplate],
    config: &EncoderConfig,
) -> Result<UsabilityReport, WmError> {
    let mut per_template = Vec::with_capacity(templates.len());
    for template in templates {
        let truth = template.ground_truth(original, original_binding)?;
        // The modified document may not even bind the entity (violent
        // restructuring): every instantiation is then destroyed.
        let after = template.ground_truth(modified, modified_binding).ok();
        let tolerance = config
            .markable_for(&template.entity, &template.result_attr)
            .map(|m| m.tolerance.clone())
            .unwrap_or(Tolerance::Exact);

        let mut correct = 0usize;
        if let Some(after) = &after {
            for (key, expected) in &truth {
                if let Some(found) = after.get(key) {
                    if multiset_matches(expected, found, &tolerance) {
                        correct += 1;
                    }
                }
            }
        }
        per_template.push(TemplateUsability {
            template: template.name.clone(),
            instantiations: truth.len(),
            correct,
        });
    }
    Ok(UsabilityReport { per_template })
}

/// Multiset equality under a tolerance: every expected value matches a
/// distinct found value and no extras remain.
fn multiset_matches(expected: &[String], found: &[String], tolerance: &Tolerance) -> bool {
    if expected.len() != found.len() {
        return false;
    }
    let mut used = vec![false; found.len()];
    for e in expected {
        let mut matched = false;
        for (i, f) in found.iter().enumerate() {
            if !used[i] && tolerance.matches(e, f) {
                used[i] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkableAttr;
    use wmx_rewrite::binding::paper_db1_binding;
    use wmx_xml::parse;

    fn doc(years: (&str, &str)) -> Document {
        parse(&format!(
            r#"<db>
                <book publisher="mkp"><title>A</title><author>X</author><year>{}</year></book>
                <book publisher="acm"><title>B</title><author>Y</author><year>{}</year></book>
            </db>"#,
            years.0, years.1
        ))
        .unwrap()
    }

    fn config() -> EncoderConfig {
        EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)])
    }

    fn templates() -> Vec<QueryTemplate> {
        vec![
            QueryTemplate::new("who-wrote", "book", "author"),
            QueryTemplate::new("published-when", "book", "year"),
        ]
    }

    #[test]
    fn identical_documents_are_fully_usable() {
        let a = doc(("1998", "2001"));
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &a, &binding, &templates(), &config()).unwrap();
        assert_eq!(report.overall(), 1.0);
        assert!(report.is_usable(0.99));
    }

    #[test]
    fn tolerated_perturbation_keeps_usability() {
        let a = doc(("1998", "2001"));
        let b = doc(("1999", "2000")); // each year moved by 1
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &b, &binding, &templates(), &config()).unwrap();
        assert_eq!(report.overall(), 1.0);
    }

    #[test]
    fn excess_perturbation_destroys_results() {
        let a = doc(("1998", "2001"));
        let b = doc(("2005", "2001")); // first year moved beyond tolerance
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &b, &binding, &templates(), &config()).unwrap();
        // who-wrote: 2/2 correct; published-when: 1/2 correct.
        assert_eq!(report.overall(), 0.75);
        let yr = report
            .per_template
            .iter()
            .find(|t| t.template == "published-when")
            .unwrap();
        assert_eq!(yr.correct, 1);
        assert_eq!(yr.fraction(), 0.5);
    }

    #[test]
    fn unmarked_attributes_compared_exactly() {
        let a = doc(("1998", "2001"));
        let mut b_doc = doc(("1998", "2001"));
        // Change an author (exact attribute): destroys that instantiation.
        let root = b_doc.root_element().unwrap();
        let book = b_doc.child_elements_named(root, "book").next().unwrap();
        let author = b_doc.first_child_element(book, "author").unwrap();
        b_doc.set_text_content(author, "Z").unwrap();
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &b_doc, &binding, &templates(), &config()).unwrap();
        assert_eq!(report.overall(), 0.75);
    }

    #[test]
    fn missing_records_destroy_instantiations() {
        let a = doc(("1998", "2001"));
        let b = parse(
            r#"<db><book publisher="mkp"><title>A</title><author>X</author><year>1998</year></book></db>"#,
        )
        .unwrap();
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &b, &binding, &templates(), &config()).unwrap();
        assert_eq!(report.overall(), 0.5);
    }

    #[test]
    fn multiset_semantics() {
        let t = Tolerance::Exact;
        assert!(multiset_matches(
            &["a".into(), "b".into()],
            &["b".into(), "a".into()],
            &t
        ));
        assert!(!multiset_matches(
            &["a".into()],
            &["a".into(), "a".into()],
            &t
        ));
        assert!(!multiset_matches(
            &["a".into(), "a".into()],
            &["a".into(), "b".into()],
            &t
        ));
        // Tolerance-based matching consumes each found value once.
        let t = Tolerance::IntegerDelta(1);
        assert!(multiset_matches(
            &["10".into(), "11".into()],
            &["11".into(), "10".into()],
            &t
        ));
        assert!(!multiset_matches(
            &["10".into(), "10".into()],
            &["11".into(), "13".into()],
            &t
        ));
    }

    #[test]
    fn totally_destroyed_document_scores_zero() {
        let a = doc(("1998", "2001"));
        let b = parse("<other/>").unwrap();
        let binding = paper_db1_binding();
        let report =
            measure_usability(&a, &binding, &b, &binding, &templates(), &config()).unwrap();
        assert_eq!(report.overall(), 0.0);
        assert!(!report.is_usable(0.5));
    }
}
