//! The semantics-free **value-identified** baseline scheme.
//!
//! Challenge (A) of the paper: "If we identify each `<year>` element by
//! its value (i.e., 1998), we lose the distinction between the two
//! `<year>` elements under the two different books. This significantly
//! reduces the amount of watermark bandwidth." This module implements
//! exactly that naive scheme so the experiments can show both predicted
//! weaknesses:
//!
//! * **bandwidth collapse** — units are distinct `(element, value)`
//!   pairs, so duplicated values merge into one unit (E1);
//! * **fragility under re-organization** — identity queries are physical
//!   (`//year[. = '1999']`); renaming or restructuring the schema leaves
//!   them dangling, and no rewriting is possible without semantics (E4).
//!
//! It shares the keyed selection and majority-vote detection math with
//! WmXML so comparisons isolate the identification strategy.

use crate::decoder::BitVotes;
use crate::embed::plugin_for;
use crate::wm::Watermark;
use crate::{write_value, WmError};
use std::collections::BTreeMap;
use wmx_crypto::{Prf, SecretKey};
use wmx_schema::DataType;
use wmx_xml::Document;
use wmx_xpath::{NodeRef, Query};

/// A markable physical path for the baseline, e.g. `("//year",
/// Integer)`.
#[derive(Debug, Clone)]
pub struct BaselinePath {
    /// Absolute query selecting value nodes.
    pub path: String,
    /// Their data type.
    pub data_type: DataType,
}

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Paths with watermark capacity.
    pub paths: Vec<BaselinePath>,
    /// Selection density (one unit in γ).
    pub gamma: u32,
}

/// A persisted baseline identity query.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineQuery {
    /// Unit id (PRF input): `val:<element>=<original value>`.
    pub unit_id: String,
    /// Identity query by *marked* value.
    pub xpath: String,
    /// Data type for extraction.
    pub data_type: DataType,
}

/// Baseline embedding outcome.
#[derive(Debug, Clone)]
pub struct BaselineEmbedReport {
    /// Distinct units (collapsed by value!).
    pub total_units: usize,
    /// Value nodes behind those units.
    pub total_nodes: usize,
    /// Units selected by the PRF.
    pub selected_units: usize,
    /// Units marked.
    pub marked_units: usize,
    /// The query set to safeguard.
    pub queries: Vec<BaselineQuery>,
}

impl BaselineEmbedReport {
    /// Bandwidth loss to value collapsing: `1 - units/nodes`.
    pub fn collapse_fraction(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            1.0 - self.total_units as f64 / self.total_nodes as f64
        }
    }
}

/// Embeds `watermark` with the value-identified scheme.
pub fn baseline_embed(
    doc: &mut Document,
    config: &BaselineConfig,
    key: &SecretKey,
    watermark: &Watermark,
) -> Result<BaselineEmbedReport, WmError> {
    if watermark.is_empty() {
        return Err(WmError::new("watermark must have at least one bit"));
    }
    let prf = Prf::new(key.clone());
    let mut report = BaselineEmbedReport {
        total_units: 0,
        total_nodes: 0,
        selected_units: 0,
        marked_units: 0,
        queries: Vec::new(),
    };

    for bp in &config.paths {
        let query = Query::compile(&bp.path)?;
        let nodes = query.select(doc);
        report.total_nodes += nodes.len();

        // Units are (node name, value) — duplicates collapse.
        let mut units: BTreeMap<(String, String), Vec<NodeRef>> = BTreeMap::new();
        for node in nodes {
            let name = node.node_name(doc);
            let value = node.string_value(doc);
            units.entry((name, value)).or_default().push(node);
        }
        report.total_units += units.len();

        for ((name, value), members) in units {
            let unit_id = format!("val:{name}={value}");
            if !prf.is_selected(&unit_id, config.gamma) {
                continue;
            }
            report.selected_units += 1;
            let bit =
                watermark.bit(prf.bit_index(&unit_id, watermark.len())) ^ prf.whiten_bit(&unit_id);
            let nonce = prf.value_nonce(&unit_id);
            let plugin = plugin_for(bp.data_type);
            let Some(marked_value) = plugin.embed(&value, bit, nonce) else {
                continue;
            };
            for node in &members {
                if marked_value != value {
                    write_value(doc, node, &marked_value)?;
                }
            }
            report.marked_units += 1;
            report.queries.push(BaselineQuery {
                unit_id,
                xpath: identity_query_text(&members[0], doc, &marked_value),
                data_type: bp.data_type,
            });
        }
    }
    Ok(report)
}

/// The physical identity query: `//name[. = 'value']` for elements,
/// `//owner[@name = 'value']/@name` for attributes.
fn identity_query_text(node: &NodeRef, doc: &Document, marked_value: &str) -> String {
    let quoted = if marked_value.contains('\'') {
        format!("\"{marked_value}\"")
    } else {
        format!("'{marked_value}'")
    };
    match node {
        NodeRef::Node(id) => {
            let name = doc.name(*id).unwrap_or("node");
            format!("//{name}[. = {quoted}]")
        }
        NodeRef::Attribute { element, name } => {
            let owner = doc.name(*element).unwrap_or("node");
            format!("//{owner}[@{name} = {quoted}]/@{name}")
        }
    }
}

/// Baseline detection outcome (same vote math as the main decoder).
#[derive(Debug, Clone)]
pub struct BaselineDetectionReport {
    /// Queries executed.
    pub total_queries: usize,
    /// Queries that located nodes.
    pub located_queries: usize,
    /// Voted bits.
    pub voted_bits: usize,
    /// Matched bits.
    pub matched_bits: usize,
    /// Detection decision at the given threshold.
    pub detected: bool,
}

impl BaselineDetectionReport {
    /// Matched fraction over voted bits.
    pub fn match_fraction(&self) -> f64 {
        if self.voted_bits == 0 {
            0.0
        } else {
            self.matched_bits as f64 / self.voted_bits as f64
        }
    }
}

/// Runs baseline detection.
pub fn baseline_detect(
    doc: &Document,
    queries: &[BaselineQuery],
    key: &SecretKey,
    watermark: &Watermark,
    threshold: f64,
) -> BaselineDetectionReport {
    let prf = Prf::new(key.clone());
    let mut bit_votes = vec![BitVotes::default(); watermark.len()];
    let mut located = 0usize;

    for stored in queries {
        let Ok(query) = Query::compile(&stored.xpath) else {
            continue;
        };
        let nodes = query.select(doc);
        if nodes.is_empty() {
            continue;
        }
        located += 1;
        let bit_index = prf.bit_index(&stored.unit_id, watermark.len());
        let nonce = prf.value_nonce(&stored.unit_id);
        let whiten = prf.whiten_bit(&stored.unit_id);
        let plugin = plugin_for(stored.data_type);
        for node in nodes {
            if let Some(raw) = plugin.extract(&node.string_value(doc), nonce) {
                if raw ^ whiten {
                    bit_votes[bit_index].ones += 1;
                } else {
                    bit_votes[bit_index].zeros += 1;
                }
            }
        }
    }

    let mut voted = 0usize;
    let mut matched = 0usize;
    for (i, votes) in bit_votes.iter().enumerate() {
        if votes.ones + votes.zeros > 0 {
            voted += 1;
            if votes.majority() == Some(watermark.bit(i)) {
                matched += 1;
            }
        }
    }
    BaselineDetectionReport {
        total_queries: queries.len(),
        located_queries: located,
        voted_bits: voted,
        matched_bits: matched,
        detected: voted > 0 && (matched as f64 / voted as f64) >= threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn doc_with_duplicates() -> Document {
        // Four books, only two distinct years: bandwidth collapses 4 → 2.
        parse(
            r#"<db>
                <book><title>A</title><year>1998</year></book>
                <book><title>B</title><year>1998</year></book>
                <book><title>C</title><year>2000</year></book>
                <book><title>D</title><year>2000</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn config() -> BaselineConfig {
        BaselineConfig {
            paths: vec![BaselinePath {
                path: "//year".into(),
                data_type: DataType::Integer,
            }],
            gamma: 1,
        }
    }

    #[test]
    fn bandwidth_collapses_on_duplicate_values() {
        let mut d = doc_with_duplicates();
        let report = baseline_embed(
            &mut d,
            &config(),
            &SecretKey::from_passphrase("k"),
            &Watermark::parse("1011").unwrap(),
        )
        .unwrap();
        assert_eq!(report.total_nodes, 4);
        assert_eq!(report.total_units, 2);
        assert_eq!(report.collapse_fraction(), 0.5);
    }

    #[test]
    fn roundtrip_detection_on_untouched_document() {
        let mut d = doc_with_duplicates();
        let key = SecretKey::from_passphrase("k");
        let wm = Watermark::parse("1011").unwrap();
        let report = baseline_embed(&mut d, &config(), &key, &wm).unwrap();
        let detection = baseline_detect(&d, &report.queries, &key, &wm, 0.85);
        assert!(detection.detected);
        assert_eq!(detection.match_fraction(), 1.0);
        assert_eq!(detection.located_queries, report.queries.len());
    }

    #[test]
    fn rename_attack_breaks_baseline() {
        let mut d = doc_with_duplicates();
        let key = SecretKey::from_passphrase("k");
        let wm = Watermark::parse("1011").unwrap();
        let report = baseline_embed(&mut d, &config(), &key, &wm).unwrap();
        // Adversary renames <year> to <published> — information preserved,
        // physical queries dead.
        for node in Query::compile("//year").unwrap().select(&d) {
            if let NodeRef::Node(id) = node {
                d.set_name(id, "published").unwrap();
            }
        }
        let detection = baseline_detect(&d, &report.queries, &key, &wm, 0.85);
        assert!(!detection.detected);
        assert_eq!(detection.located_queries, 0);
    }

    #[test]
    fn attribute_valued_baseline_units() {
        let mut d = parse(
            r#"<db><book publisher="mkp"><title>A</title></book><book publisher="acm"><title>B</title></book></db>"#,
        )
        .unwrap();
        let cfg = BaselineConfig {
            paths: vec![BaselinePath {
                path: "//book/@publisher".into(),
                data_type: DataType::Text,
            }],
            gamma: 1,
        };
        let key = SecretKey::from_passphrase("k");
        let wm = Watermark::parse("10").unwrap();
        let report = baseline_embed(&mut d, &cfg, &key, &wm).unwrap();
        assert_eq!(report.total_units, 2);
        let detection = baseline_detect(&d, &report.queries, &key, &wm, 0.85);
        assert!(detection.detected);
    }

    #[test]
    fn marked_units_consistent_across_duplicates() {
        let mut d = doc_with_duplicates();
        let key = SecretKey::from_passphrase("k");
        let wm = Watermark::parse("1011").unwrap();
        baseline_embed(&mut d, &config(), &key, &wm).unwrap();
        // Duplicate years moved together (same unit → same mark).
        let years: Vec<String> = Query::compile("//year")
            .unwrap()
            .select(&d)
            .iter()
            .map(|n| n.string_value(&d))
            .collect();
        assert_eq!(years[0], years[1]);
        assert_eq!(years[2], years[3]);
    }
}
