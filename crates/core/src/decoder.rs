//! Watermark detection (§2.2 step 3).
//!
//! The decoder re-executes the safeguarded query set `Q` (rewriting each
//! query through a schema mapping when the suspect document was
//! reorganized — the paper's Fig. 2), extracts one vote per located value
//! node, majority-votes each watermark bit, and decides detection by
//! comparing the recovered bits against the claimed watermark under a
//! threshold τ. A sign-test false-positive probability quantifies how
//! likely the observed agreement would be for an unrelated document.

use crate::config::EncoderConfig;
use crate::encoder::StoredQuery;
use crate::nodectx::{DomNodes, UnitMarker};
use crate::wm::Watermark;
use wmx_crypto::SecretKey;
use wmx_rewrite::{rewrite::rewrite_through, SchemaMapping};
use wmx_xml::Document;
use wmx_xpath::{Evaluator, Query};

/// Detection parameters.
#[derive(Debug, Clone)]
pub struct DetectionInput<'a> {
    /// The safeguarded query set.
    pub queries: &'a [StoredQuery],
    /// The secret key used at embedding.
    pub key: SecretKey,
    /// The claimed watermark.
    pub watermark: Watermark,
    /// Detection threshold τ on the matched-bit fraction (e.g. 0.85).
    pub threshold: f64,
    /// Mapping to rewrite queries through when the suspect document uses
    /// a reorganized schema.
    pub mapping: Option<&'a SchemaMapping>,
}

/// Per-bit vote tally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVotes {
    /// Votes for 1.
    pub ones: usize,
    /// Votes for 0.
    pub zeros: usize,
}

impl BitVotes {
    /// Majority decision (`None` on tie or no votes).
    pub fn majority(&self) -> Option<bool> {
        match self.ones.cmp(&self.zeros) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Records one vote.
    pub fn add(&mut self, bit: bool) {
        if bit {
            self.ones += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Adds another tally into this one (used when merging detection
    /// results from parallel chunks).
    pub fn merge(&mut self, other: &BitVotes) {
        self.ones += other.ones;
        self.zeros += other.zeros;
    }
}

/// Detection outcome.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// Queries executed.
    pub total_queries: usize,
    /// Queries that located at least one node.
    pub located_queries: usize,
    /// Queries that could not be rewritten to the target schema.
    pub unrewritable_queries: usize,
    /// Individual node votes cast.
    pub votes_cast: usize,
    /// Vote tallies per watermark bit.
    pub bit_votes: Vec<BitVotes>,
    /// Majority-recovered bits (`None` where no votes or tie).
    pub recovered: Vec<Option<bool>>,
    /// Bits with at least one vote.
    pub voted_bits: usize,
    /// Voted bits whose majority equals the claimed watermark bit.
    pub matched_bits: usize,
    /// Whether the watermark is declared detected.
    pub detected: bool,
    /// Sign-test probability of observing ≥ `matched_bits` agreements
    /// among `voted_bits` fair coin flips (the false-positive odds).
    pub p_value: f64,
    /// Per-unit/per-record tamper localization (`None` on the default
    /// detect path; populated by the opt-in forensic passes).
    pub forensics: Option<crate::forensics::ForensicsReport>,
}

impl DetectionReport {
    /// Matched fraction over voted bits (0 when nothing voted).
    pub fn match_fraction(&self) -> f64 {
        if self.voted_bits == 0 {
            0.0
        } else {
            self.matched_bits as f64 / self.voted_bits as f64
        }
    }

    /// Fraction of watermark bits that received any vote.
    pub fn coverage(&self) -> f64 {
        if self.bit_votes.is_empty() {
            0.0
        } else {
            self.voted_bits as f64 / self.bit_votes.len() as f64
        }
    }

    /// Total (ones, zeros) votes summed across all watermark bits — the
    /// raw tally telemetry reports record alongside the verdict.
    pub fn vote_totals(&self) -> (usize, usize) {
        self.bit_votes.iter().fold((0, 0), |(ones, zeros), bv| {
            (ones + bv.ones, zeros + bv.zeros)
        })
    }
}

/// Runs detection over `doc`.
pub fn detect(doc: &Document, input: &DetectionInput<'_>) -> DetectionReport {
    let _detect_span = wmx_telemetry::span("detect");
    let (bit_votes, counters) = collect_query_votes(doc, input, input.watermark.len());
    report_from_votes(bit_votes, &input.watermark, input.threshold, counters)
}

/// The query-driven extraction pass shared by [`detect`] and the
/// forensic decoder: resolves and batch-answers the stored query set and
/// tallies one vote per located value node into `wm_len` bit slots
/// (`wm_len` is the *effective* watermark width — base length times the
/// redundancy factor).
pub(crate) fn collect_query_votes(
    doc: &Document,
    input: &DetectionInput<'_>,
    wm_len: usize,
) -> (Vec<BitVotes>, VoteCounters) {
    let marker = UnitMarker::new(input.key.clone());
    let mut bit_votes = vec![BitVotes::default(); wm_len];
    let mut located_queries = 0usize;
    let mut unrewritable = 0usize;
    let mut votes_cast = 0usize;
    // One evaluator for the whole query set: name→symbol resolutions
    // are memoized across queries (identity queries share a small
    // vocabulary), so each name is resolved once per detection run
    // instead of once per candidate node per query.
    let evaluator = Evaluator::new(doc);

    // Resolve every stored query up front, then answer whole families
    // through `batch_select`: identity queries of one (entity, attr)
    // family share their instance scan and per-candidate key-path
    // evaluation instead of repeating both per query. Non-batchable
    // queries fall back to per-query evaluation; either way the node
    // lists — and therefore every vote — are identical to the
    // query-at-a-time loop.
    let mut resolved: Vec<(usize, Query)> = Vec::with_capacity(input.queries.len());
    {
        let _s = wmx_telemetry::span("detect.resolve");
        for (i, stored) in input.queries.iter().enumerate() {
            match resolve_query(stored, input.mapping) {
                Ok(q) => resolved.push((i, q)),
                Err(()) => unrewritable += 1,
            }
        }
    }
    let compiled: Vec<Query> = resolved.iter().map(|(_, q)| q.clone()).collect();
    let batched = {
        let _s = wmx_telemetry::span("detect.select");
        wmx_xpath::batch_select(&evaluator, &compiled)
    };

    let _extract_span = wmx_telemetry::span("detect.extract");
    for (slot, (stored_idx, query)) in resolved.iter().enumerate() {
        let stored = &input.queries[*stored_idx];
        let nodes = match &batched[slot] {
            Some(nodes) => nodes.clone(),
            None => query.select_with(&evaluator),
        };
        if nodes.is_empty() {
            continue;
        }
        located_queries += 1;
        // Extraction shares `UnitMarker` with the encoder and the
        // streaming engine; this path feeds it the query-located nodes.
        let votes = marker.extract_unit(
            &DomNodes::new(doc, &nodes),
            &stored.unit_id,
            stored.mark,
            wm_len,
        );
        for bit in votes.bits {
            votes_cast += 1;
            bit_votes[votes.bit_index].add(bit);
        }
    }
    drop(_extract_span);

    (
        bit_votes,
        VoteCounters {
            total_queries: input.queries.len(),
            located_queries,
            unrewritable_queries: unrewritable,
            votes_cast,
        },
    )
}

/// Query-level counters accompanying a vote tally (how many identity
/// queries/units were executed, located, unrewritable, and how many node
/// votes they produced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteCounters {
    /// Queries (or streaming units) considered.
    pub total_queries: usize,
    /// Queries/units that located at least one node.
    pub located_queries: usize,
    /// Queries that could not be rewritten to the target schema.
    pub unrewritable_queries: usize,
    /// Individual node votes cast.
    pub votes_cast: usize,
}

/// Turns a per-bit vote tally into a full [`DetectionReport`]: majority
/// decision, matched-bit count, sign-test p-value, and the τ decision.
/// Shared by [`detect`] and the `wmx-stream` engine (which accumulates
/// `bit_votes` across record chunks before finalizing).
pub fn report_from_votes(
    bit_votes: Vec<BitVotes>,
    watermark: &Watermark,
    threshold: f64,
    counters: VoteCounters,
) -> DetectionReport {
    let recovered: Vec<Option<bool>> = bit_votes.iter().map(BitVotes::majority).collect();
    let mut voted_bits = 0usize;
    let mut matched_bits = 0usize;
    for (i, r) in recovered.iter().enumerate() {
        if bit_votes[i].ones + bit_votes[i].zeros > 0 {
            voted_bits += 1;
            if *r == Some(watermark.bit(i)) {
                matched_bits += 1;
            }
        }
    }

    let p_value = sign_test_p(voted_bits, matched_bits);
    let match_fraction = if voted_bits == 0 {
        0.0
    } else {
        matched_bits as f64 / voted_bits as f64
    };
    let detected = voted_bits > 0 && match_fraction >= threshold;

    DetectionReport {
        total_queries: counters.total_queries,
        located_queries: counters.located_queries,
        unrewritable_queries: counters.unrewritable_queries,
        votes_cast: counters.votes_cast,
        bit_votes,
        recovered,
        voted_bits,
        matched_bits,
        detected,
        p_value,
        forensics: None,
    }
}

/// Convenience: detect with the encoder's γ-independent defaults
/// (τ = 0.85, no rewriting). `config` is accepted for symmetry with
/// [`crate::encoder::embed`] but only the threshold policy lives here.
pub fn detect_simple(
    doc: &Document,
    queries: &[StoredQuery],
    key: &SecretKey,
    watermark: &Watermark,
    _config: &EncoderConfig,
) -> DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.85,
            mapping: None,
        },
    )
}

/// Resolves a stored query: rewrite through the mapping when present
/// (logical recompile first, concrete pattern rewrite as fallback),
/// otherwise compile the stored text.
fn resolve_query(stored: &StoredQuery, mapping: Option<&SchemaMapping>) -> Result<Query, ()> {
    match mapping {
        None => Query::compile(&stored.xpath).map_err(|_| ()),
        Some(m) => {
            if let Some(logical) = &stored.logical {
                if let Ok(q) = logical.compile(&m.to) {
                    return Ok(q);
                }
            }
            let original = Query::compile(&stored.xpath).map_err(|_| ())?;
            rewrite_through(&original, m).map_err(|_| ())
        }
    }
}

/// P[X ≥ matched] for X ~ Binomial(voted, 1/2), computed in log space.
pub(crate) fn sign_test_p(voted: usize, matched: usize) -> f64 {
    if voted == 0 {
        return 1.0;
    }
    // ln C(n, k) via cumulative sums of logs.
    let n = voted;
    let ln2 = std::f64::consts::LN_2;
    let mut ln_fact = vec![0.0f64; n + 1];
    for i in 1..=n {
        ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
    }
    let mut p = 0.0f64;
    for k in matched..=n {
        let ln_choose = ln_fact[n] - ln_fact[k] - ln_fact[n - k];
        p += (ln_choose - n as f64 * ln2).exp();
    }
    p.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderConfig, MarkableAttr};
    use crate::encoder::embed;
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    use wmx_rewrite::SchemaBinding;
    use wmx_xml::parse;

    fn doc(n: usize) -> Document {
        let mut body = String::from("<db>");
        for i in 0..n {
            body.push_str(&format!(
                "<book publisher=\"pub{}\"><title>Book {i}</title><year>{}</year></book>",
                i % 3,
                1950 + (i % 60)
            ));
        }
        body.push_str("</db>");
        parse(&body).unwrap()
    }

    fn binding() -> SchemaBinding {
        SchemaBinding::new(
            "db1",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "title",
                vec![
                    ("title", AttrBinding::ChildText("title".into())),
                    ("year", AttrBinding::ChildText("year".into())),
                    ("publisher", AttrBinding::Attribute("publisher".into())),
                ],
            )
            .unwrap()],
        )
    }

    fn config(gamma: u32) -> EncoderConfig {
        EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)])
    }

    fn embed_and_report(
        n: usize,
        gamma: u32,
        key: &str,
        wm: &str,
    ) -> (Document, crate::encoder::EmbedReport, Watermark, SecretKey) {
        let mut d = doc(n);
        let key = SecretKey::from_passphrase(key);
        let wm = Watermark::parse(wm).unwrap();
        let report = embed(&mut d, &binding(), &[], &config(gamma), &key, &wm).unwrap();
        (d, report, wm, key)
    }

    #[test]
    fn detects_own_watermark_perfectly() {
        let (d, report, wm, key) = embed_and_report(300, 3, "k", "10110100");
        let detection = detect(
            &d,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(detection.detected);
        assert_eq!(detection.match_fraction(), 1.0);
        assert_eq!(detection.coverage(), 1.0);
        assert_eq!(detection.located_queries, report.queries.len());
        assert!(detection.p_value < 0.01);
    }

    #[test]
    fn wrong_key_fails_detection() {
        let (d, report, wm, _key) = embed_and_report(300, 3, "right", "10110100");
        let detection = detect(
            &d,
            &DetectionInput {
                queries: &report.queries,
                key: SecretKey::from_passphrase("wrong"),
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        // Wrong key scrambles bit indices and nonces: agreement ≈ 50%.
        assert!(!detection.detected, "wrong key must not detect");
        assert!(detection.match_fraction() < 0.85);
    }

    #[test]
    fn wrong_watermark_fails_detection() {
        let (d, report, _wm, key) = embed_and_report(300, 3, "k", "10110100");
        let detection = detect(
            &d,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: Watermark::parse("01001011").unwrap(), // complement
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(!detection.detected);
        assert_eq!(detection.matched_bits, 0);
    }

    #[test]
    fn unmarked_document_fails_detection() {
        let (_, report, wm, key) = embed_and_report(300, 3, "k", "10110100");
        let clean = doc(300);
        let detection = detect(
            &clean,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        // Queries still locate nodes (clean data), but parities are
        // arbitrary: p_value should not be tiny AND detection at a sane
        // threshold should fail with high probability. With years from a
        // fixed distribution the parities are balanced enough.
        assert!(!detection.detected || detection.p_value > 1e-6);
    }

    #[test]
    fn majority_voting_tolerates_minority_damage() {
        let (mut d, report, wm, key) = embed_and_report(600, 2, "k", "1011");
        // Damage 10% of years by +7 (beyond tolerance, random parity).
        let years = Query::compile("/db/book/year").unwrap().select(&d);
        for (i, node) in years.iter().enumerate() {
            if i % 10 == 0 {
                let v: i64 = node.string_value(&d).parse().unwrap();
                crate::write_value(&mut d, node, &(v + 7).to_string()).unwrap();
            }
        }
        let detection = detect(
            &d,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(
            detection.detected,
            "10% damage should not kill a 4-bit mark"
        );
    }

    #[test]
    fn sign_test_behaviour() {
        assert_eq!(sign_test_p(0, 0), 1.0);
        assert!((sign_test_p(1, 0) - 1.0).abs() < 1e-12);
        assert!((sign_test_p(1, 1) - 0.5).abs() < 1e-12);
        assert!((sign_test_p(10, 10) - (0.5f64).powi(10)).abs() < 1e-12);
        // Monotone in matched.
        assert!(sign_test_p(100, 90) < sign_test_p(100, 60));
        // Large n stays finite and sane.
        let p = sign_test_p(5000, 2500);
        assert!(p > 0.4 && p <= 1.0);
    }

    #[test]
    fn bit_votes_majority() {
        assert_eq!(BitVotes { ones: 3, zeros: 1 }.majority(), Some(true));
        assert_eq!(BitVotes { ones: 1, zeros: 3 }.majority(), Some(false));
        assert_eq!(BitVotes { ones: 2, zeros: 2 }.majority(), None);
        assert_eq!(BitVotes::default().majority(), None);
    }

    #[test]
    fn detect_simple_wrapper() {
        let (d, report, wm, key) = embed_and_report(200, 2, "k", "101101");
        let detection = detect_simple(&d, &report.queries, &key, &wm, &config(2));
        assert!(detection.detected);
    }

    #[test]
    fn p_value_rises_with_damage() {
        let (d, report, wm, key) = embed_and_report(600, 2, "k", "10110100");
        let p_at_damage = |fraction: f64| {
            let mut damaged = d.clone();
            let years = Query::compile("/db/book/year").unwrap().select(&damaged);
            let step = (1.0 / fraction.max(0.001)) as usize;
            for (i, node) in years.iter().enumerate() {
                if fraction > 0.0 && i % step.max(1) == 0 {
                    let v: i64 = node.string_value(&damaged).parse().unwrap();
                    crate::write_value(&mut damaged, node, &(v + 5).to_string()).unwrap();
                }
            }
            detect(
                &damaged,
                &DetectionInput {
                    queries: &report.queries,
                    key: key.clone(),
                    watermark: wm.clone(),
                    threshold: 0.85,
                    mapping: None,
                },
            )
            .p_value
        };
        let clean = p_at_damage(0.0);
        let half = p_at_damage(0.5);
        let full = p_at_damage(1.0);
        assert!(
            clean <= half,
            "p-value must not drop with damage: {clean} vs {half}"
        );
        assert!(
            half <= full,
            "p-value must not drop with damage: {half} vs {full}"
        );
        assert!(clean < 1e-2 && full > 1e-2);
    }

    #[test]
    fn coverage_reflects_missing_queries() {
        let (d, report, wm, key) = embed_and_report(400, 2, "k", "10110100");
        // Keep only a third of the queries: coverage and located counts
        // must reflect the loss while matching stays perfect.
        let subset: Vec<_> = report.queries.iter().step_by(3).cloned().collect();
        let detection = detect(
            &d,
            &DetectionInput {
                queries: &subset,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        assert_eq!(detection.total_queries, subset.len());
        assert_eq!(detection.located_queries, subset.len());
        assert_eq!(detection.match_fraction(), 1.0);
        assert!(
            detection.coverage() > 0.5,
            "a third of ~67 queries still covers most bits"
        );
    }

    #[test]
    fn embedding_never_touches_key_values() {
        // Invariant: identity depends on keys, so keys must be byte-identical
        // before and after embedding.
        let original = doc(300);
        let mut marked = doc(300);
        embed(
            &mut marked,
            &binding(),
            &[],
            &config(1),
            &SecretKey::from_passphrase("keys"),
            &Watermark::parse("101101").unwrap(),
        )
        .unwrap();
        let titles = |d: &Document| -> Vec<String> {
            Query::compile("/db/book/title")
                .unwrap()
                .select(d)
                .iter()
                .map(|n| n.string_value(d))
                .collect()
        };
        assert_eq!(titles(&original), titles(&marked));
    }
}
