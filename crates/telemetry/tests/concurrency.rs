//! Concurrency pinning: 8 threads hammer shared counters and
//! histograms and the joined totals must be exact — no lost updates,
//! no miscounted buckets. This is the property that justifies Relaxed
//! ordering on the record path.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use wmx_telemetry::{Registry, BUCKET_COUNT};

const THREADS: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn counters_and_gauges_are_exact_across_threads(
        per_thread in 1usize..400,
        step in 1u64..50,
    ) {
        let reg = Registry::new();
        let counter = reg.counter("hammered");
        let gauge = reg.gauge("depth");
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let counter = Arc::clone(&counter);
                let gauge = Arc::clone(&gauge);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                        counter.add(step);
                        gauge.add(1);
                        gauge.add(-1);
                    }
                });
            }
        });
        let ops = (THREADS * per_thread) as u64;
        prop_assert_eq!(counter.get(), ops * (1 + step));
        prop_assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn histogram_totals_are_exact_across_threads(
        samples in prop::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let reg = Registry::new();
        let hist = reg.histogram("latency");
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let hist = Arc::clone(&hist);
                let samples = samples.clone();
                scope.spawn(move || {
                    for &s in &samples {
                        hist.record(s);
                    }
                });
            }
        });
        let n = (THREADS * samples.len()) as u64;
        let sum: u64 = samples.iter().sum::<u64>() * THREADS as u64;
        prop_assert_eq!(hist.count(), n);
        prop_assert_eq!(hist.sum(), sum);
        prop_assert_eq!(hist.min(), samples.iter().min().copied());
        prop_assert_eq!(hist.max(), samples.iter().max().copied());
        let bucket_total: u64 = (0..BUCKET_COUNT).map(|i| hist.bucket_count(i)).sum();
        prop_assert_eq!(bucket_total, n, "every observation lands in exactly one bucket");
    }

    #[test]
    fn registration_races_resolve_to_one_metric(per_thread in 1usize..100) {
        let reg = Registry::new();
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let reg = &reg;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        // Every thread re-looks-up the same name; all
                        // handles must alias one underlying counter.
                        reg.counter("raced").inc();
                    }
                });
            }
        });
        prop_assert_eq!(reg.counter("raced").get(), (THREADS * per_thread) as u64);
        prop_assert_eq!(reg.counters().len(), 1);
    }
}
