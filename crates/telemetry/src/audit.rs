//! Structured JSON-lines audit events.
//!
//! Every embed/detect invocation appends exactly one line to the audit
//! log: a compact JSON object identifying the workload, how long each
//! phase took, the vote totals, and the verdict. This is the evidence
//! trail the fingerprinting roadmap items need — a detection verdict is
//! only worth arguing about if the run that produced it is recorded.
//!
//! ```json
//! {"schema_version":1,"operation":"detect","engine":"dom","workload":"orders.xml",
//!  "records":null,"phases":{"detect":1812,"detect.select":1490},
//!  "counts":{"votes_ones":38,"votes_zeros":2},"detected":true,"p_value":1.2e-9}
//! ```

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use crate::json::{obj, Json};

/// Version stamped into every audit line; bump on shape changes.
pub const AUDIT_SCHEMA_VERSION: u64 = 1;

/// One embed/detect invocation, ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct AuditEvent {
    /// What ran: `"embed"`, `"detect"`, `"stream-embed"`, …
    pub operation: String,
    /// Which engine: `"dom"`, `"stream"`, or `"parallel"`.
    pub engine: String,
    /// Workload identity — typically the input path.
    pub workload: String,
    /// Records processed, when the engine counts them.
    pub records: Option<u64>,
    /// Per-phase wall time in microseconds, from the span trace.
    pub phases: Vec<(String, u64)>,
    /// Operation tallies (vote totals, marked units, …).
    pub counts: Vec<(String, u64)>,
    /// The detection verdict; `None` for embed operations.
    pub detected: Option<bool>,
    /// The detection p-value; `None` for embed operations.
    pub p_value: Option<f64>,
}

impl AuditEvent {
    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|(name, micros)| (name.clone(), Json::Number(*micros as f64)))
            .collect();
        let counts = self
            .counts
            .iter()
            .map(|(name, value)| (name.clone(), Json::Number(*value as f64)))
            .collect();
        obj(vec![
            ("schema_version", Json::Number(AUDIT_SCHEMA_VERSION as f64)),
            ("operation", Json::String(self.operation.clone())),
            ("engine", Json::String(self.engine.clone())),
            ("workload", Json::String(self.workload.clone())),
            (
                "records",
                self.records.map_or(Json::Null, |r| Json::Number(r as f64)),
            ),
            ("phases", Json::Object(phases)),
            ("counts", Json::Object(counts)),
            ("detected", self.detected.map_or(Json::Null, Json::Bool)),
            ("p_value", self.p_value.map_or(Json::Null, Json::Number)),
        ])
        .to_compact_string()
    }
}

/// An append-only audit log.
///
/// The sink serializes writers behind a `Mutex` so concurrent
/// invocations in one process emit whole lines, never interleaved
/// fragments. Events are flushed per line — audit logs are worthless if
/// the crash that mattered lost them.
pub struct AuditSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for AuditSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditSink").finish_non_exhaustive()
    }
}

impl AuditSink {
    /// Opens (creating if needed) `path` for appending.
    pub fn append_to(path: &Path) -> std::io::Result<AuditSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AuditSink::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (tests pass a `Vec<u8>` buffer).
    pub fn from_writer(out: Box<dyn Write + Send>) -> AuditSink {
        AuditSink {
            out: Mutex::new(out),
        }
    }

    /// Appends one event as one line and flushes.
    pub fn record(&self, event: &AuditEvent) -> std::io::Result<()> {
        let line = event.to_json_line();
        let mut out = self.out.lock().expect("audit sink poisoned");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }
}

/// Checks that `line` is a well-formed version-1 audit event.
pub fn validate_audit_line(line: &str) -> Result<(), String> {
    let value = Json::parse(line).map_err(|e| format!("audit line is not JSON: {e}"))?;
    let version = value
        .get("schema_version")
        .and_then(Json::as_usize)
        .ok_or("audit line is missing a numeric schema_version")?;
    if version as u64 != AUDIT_SCHEMA_VERSION {
        return Err(format!(
            "audit schema_version {version} != supported {AUDIT_SCHEMA_VERSION}"
        ));
    }
    for field in ["operation", "engine", "workload"] {
        if value.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("audit line is missing string field {field:?}"));
        }
    }
    for field in ["phases", "counts"] {
        let Some(Json::Object(members)) = value.get(field) else {
            return Err(format!("audit line field {field:?} must be an object"));
        };
        for (name, v) in members {
            if v.as_f64().is_none() {
                return Err(format!("audit {field} entry {name:?} is not a number"));
            }
        }
    }
    match value.get("detected") {
        Some(Json::Bool(_)) | Some(Json::Null) => {}
        _ => return Err("audit line field \"detected\" must be bool or null".to_string()),
    }
    match value.get("p_value") {
        Some(Json::Number(_)) | Some(Json::Null) => {}
        _ => return Err("audit line field \"p_value\" must be number or null".to_string()),
    }
    match value.get("records") {
        Some(Json::Number(_)) | Some(Json::Null) => {}
        _ => return Err("audit line field \"records\" must be number or null".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle into a shared buffer, so tests can read back
    /// what the sink wrote.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn detect_event(detected: bool) -> AuditEvent {
        AuditEvent {
            operation: "detect".to_string(),
            engine: "dom".to_string(),
            workload: "orders.xml".to_string(),
            records: Some(400),
            phases: vec![
                ("detect".to_string(), 1812),
                ("detect.select".to_string(), 1490),
            ],
            counts: vec![
                ("votes_ones".to_string(), if detected { 38 } else { 3 }),
                ("votes_zeros".to_string(), 2),
            ],
            detected: Some(detected),
            p_value: Some(if detected { 1.2e-9 } else { 0.61 }),
        }
    }

    #[test]
    fn both_verdicts_serialize_to_valid_single_lines() {
        for detected in [true, false] {
            let line = detect_event(detected).to_json_line();
            assert!(!line.contains('\n'));
            validate_audit_line(&line).unwrap();
            let value = Json::parse(&line).unwrap();
            assert_eq!(
                value.get("detected").and_then(Json::as_bool),
                Some(detected)
            );
            assert_eq!(
                value
                    .get("counts")
                    .and_then(|c| c.get("votes_zeros"))
                    .and_then(Json::as_usize),
                Some(2)
            );
        }
    }

    #[test]
    fn embed_events_carry_null_verdict_fields() {
        let event = AuditEvent {
            operation: "embed".to_string(),
            engine: "stream".to_string(),
            workload: "orders.xml".to_string(),
            ..AuditEvent::default()
        };
        let line = event.to_json_line();
        validate_audit_line(&line).unwrap();
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("detected"), Some(&Json::Null));
        assert_eq!(value.get("p_value"), Some(&Json::Null));
        assert_eq!(value.get("records"), Some(&Json::Null));
    }

    #[test]
    fn sink_appends_one_line_per_event() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let sink = AuditSink::from_writer(Box::new(buf.clone()));
        sink.record(&detect_event(true)).unwrap();
        sink.record(&detect_event(false)).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_audit_line(line).unwrap();
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_audit_line("not json").is_err());
        assert!(validate_audit_line("{}").is_err());
        assert!(validate_audit_line(
            r#"{"schema_version":2,"operation":"x","engine":"y","workload":"z","records":null,"phases":{},"counts":{},"detected":null,"p_value":null}"#
        )
        .unwrap_err()
        .contains("schema_version"));
        assert!(validate_audit_line(
            r#"{"schema_version":1,"operation":"x","engine":"y","workload":"z","records":null,"phases":{"p":"late"},"counts":{},"detected":null,"p_value":null}"#
        )
        .is_err());
        assert!(validate_audit_line(
            r#"{"schema_version":1,"operation":"x","engine":"y","workload":"z","records":null,"phases":{},"counts":{},"detected":"yes","p_value":null}"#
        )
        .is_err());
    }
}
