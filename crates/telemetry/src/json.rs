//! A hand-rolled JSON value, writer, and reader.
//!
//! The build environment has no crates.io access, so — like the vendored
//! `rand`/`criterion` shims — serialization is implemented in-tree. The
//! subset is exactly what the BENCH report and telemetry snapshot
//! schemas need: objects keep insertion order, numbers are `f64`
//! (integers round-trip exactly up to 2^53), and strings support the
//! standard escape set. This module originated in `wmx-bench` and moved
//! here so the telemetry exporter and audit sink can share it without a
//! dependency cycle; `wmx-bench` re-exports it unchanged.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the JSON-lines
    /// form the audit sink appends, one value per line.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value plus optional whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparsable document.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's `{}` for f64 prints the shortest round-trip form.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where the error was noticed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the BENCH
                            // schema; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Convenience: an object member list builder for struct serializers.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = obj(vec![
            ("schema_version", Json::Number(1.0)),
            ("name", Json::String("smoke \"quoted\" \n".into())),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Array(vec![
                    Json::Number(-12.5),
                    Json::Number(3e-7),
                    Json::Number(9007199254740992.0),
                    Json::Array(vec![]),
                    Json::Object(vec![]),
                ]),
            ),
        ]);
        let text = value.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn compact_form_is_one_line_and_roundtrips() {
        let value = obj(vec![
            ("event", Json::String("detect\nnewline".into())),
            ("votes", Json::Array(vec![Json::Number(3.0), Json::Null])),
            ("nested", obj(vec![("ok", Json::Bool(false))])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let line = value.to_compact_string();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert!(!line.contains(": "), "no pretty separators");
        assert_eq!(Json::parse(&line).unwrap(), value);
        assert_eq!(
            line,
            r#"{"event":"detect\nnewline","votes":[3,null],"nested":{"ok":false},"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut out = String::new();
        write_number(&mut out, 42.0);
        assert_eq!(out, "42");
        let mut out = String::new();
        write_number(&mut out, 0.25);
        assert_eq!(out, "0.25");
        let mut out = String::new();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"a": 3, "b": [1, "x"], "c": true}"#).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(
            value.get("b").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(value.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Number(1.5).as_usize(), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_and_escape_parsing() {
        let parsed = Json::parse(r#""café \t \\ © done""#).unwrap();
        assert_eq!(parsed.as_str(), Some("café \t \\ © done"));
    }
}
