//! `wmx-telemetry`: zero-dependency observability for WmXML.
//!
//! The paper's pipeline is multi-phase — parse, unit selection,
//! PRF-driven marking, vote-tallied detection — and this crate is the
//! substrate that makes a live run of it inspectable:
//!
//! - [`metrics`] — lock-free [`Counter`]/[`Gauge`]/[`Histogram`]
//!   primitives safe for the per-record streaming hot path (Relaxed
//!   atomics, zero allocation, zero locks).
//! - [`registry`] — a process-wide named [`Registry`] handing out
//!   `Arc` handles; registration is the cold path.
//! - [`span`] — RAII [`Span`]s for phase timing, with an optional
//!   thread-local trace buffer behind a single atomic flag.
//! - [`snapshot`] — a schema-versioned JSON export of a registry.
//! - [`audit`] — JSON-lines [`AuditEvent`]s recording each embed or
//!   detect invocation: workload, per-phase timings, vote totals,
//!   verdict.
//! - [`json`] — the hand-rolled JSON value/reader/writer (moved here
//!   from `wmx-bench`, which re-exports it).
//!
//! The crate has no dependencies at all, matching the workspace's
//! vendored-shim policy, so every other crate can depend on it without
//! cycles.

#![warn(missing_docs)]

pub mod audit;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use audit::{validate_audit_line, AuditEvent, AuditSink, AUDIT_SCHEMA_VERSION};
pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram, BUCKET_BOUNDS_MICROS, BUCKET_COUNT};
pub use registry::{global, Registry};
pub use snapshot::{global_snapshot, snapshot, validate_snapshot, SNAPSHOT_SCHEMA_VERSION};
pub use span::{
    disable_trace, enable_trace, phase_totals, render_trace, span, take_trace, Span, TraceEvent,
};
