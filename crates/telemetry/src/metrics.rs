//! The record path: lock-free, allocation-free metric primitives.
//!
//! Everything in this module is built from `Relaxed` atomics only — no
//! `Mutex`/`RwLock`, no heap allocation, no string formatting — so a
//! counter increment or histogram record costs one (or a few) atomic
//! RMW operations and can sit on the per-record streaming hot path.
//! `scripts/check-hot-path-format.sh` denies locking and allocating
//! tokens in this file's non-test code, the same way it guards the
//! embed/detect loops.
//!
//! Registration (naming a metric, handing out `Arc` handles) is the
//! cold path and lives in [`crate::registry`]; these types are plain
//! const-constructible values so they can also be embedded directly in
//! statics or structs without touching the registry at all.
//!
//! Relaxed ordering is deliberate: metrics are monotone tallies whose
//! readers (snapshot export) tolerate being a few operations behind;
//! per-value totals are still exact once the writing threads are joined,
//! which is what the concurrency tests pin.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. resident nodes, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (a high-water mark).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds (inclusive) of [`Histogram`], in microseconds.
/// Chosen to cover everything from a sub-microsecond chunk to a
/// multi-second whole-document pass; the final implicit bucket is
/// +infinity.
pub const BUCKET_BOUNDS_MICROS: [u64; 20] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 5_000_000,
];

/// Bucket count of [`Histogram`]: the fixed bounds plus the +infinity
/// overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_MICROS.len() + 1;

/// A fixed-bucket latency histogram over microsecond observations.
///
/// All state is a const-sized array of atomics: recording is a bounds
/// scan plus four Relaxed RMWs, with zero allocation and zero locking.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
        }
    }

    /// Records one observation of `micros`.
    #[inline]
    pub fn record(&self, micros: u64) {
        let idx = BUCKET_BOUNDS_MICROS.partition_point(|&bound| micros > bound);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.min.fetch_min(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` while empty).
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            None
        } else {
            Some(v)
        }
    }

    /// Largest observation (`None` while empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Observations in bucket `idx` (the last index is the +infinity
    /// overflow bucket).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.fetch_max(5);
        assert_eq!(g.get(), 7);
        g.fetch_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);

        h.record(0); // <= 1µs bucket
        h.record(1);
        h.record(3); // <= 5µs bucket
        h.record(7_000_000); // overflow bucket

        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 7_000_004);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(7_000_000));
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(BUCKET_COUNT - 1), 1);

        let total: u64 = (0..BUCKET_COUNT).map(|i| h.bucket_count(i)).sum();
        assert_eq!(total, h.count(), "every observation lands in a bucket");
    }

    #[test]
    fn bucket_bounds_are_sorted_and_distinct() {
        for pair in BUCKET_BOUNDS_MICROS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // Boundary values land in the bucket whose bound they equal.
        let h = Histogram::new();
        h.record(1_000);
        assert_eq!(h.bucket_count(9), 1);
    }
}
