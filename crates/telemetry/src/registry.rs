//! The named-metric registry: the cold path.
//!
//! A [`Registry`] hands out `Arc` handles to [`Counter`]s, [`Gauge`]s,
//! and [`Histogram`]s keyed by name. Registration takes a `Mutex` and
//! may allocate — callers do it once at startup (or first use) and keep
//! the handle; the record path then touches only the lock-free
//! primitives in [`crate::metrics`]. `BTreeMap` keeps snapshot output
//! deterministically ordered.
//!
//! [`global()`] is the process-wide registry every subsystem shares;
//! tests that need exact totals build their own `Registry` instead so
//! parallel test threads cannot interleave.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A named collection of metrics.
///
/// Lookup/creation locks briefly; the returned handles are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        self.counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        self.gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));

        let h1 = reg.histogram("lat");
        let h2 = reg.histogram("lat");
        h1.record(5);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn listing_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zeta");
        reg.counter("alpha");
        reg.counter("mid");
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn kinds_are_namespaced_independently() {
        let reg = Registry::new();
        reg.counter("shared");
        reg.gauge("shared");
        reg.histogram("shared");
        assert_eq!(reg.counters().len(), 1);
        assert_eq!(reg.gauges().len(), 1);
        assert_eq!(reg.histograms().len(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("test.registry.global_singleton");
        let b = global().counter("test.registry.global_singleton");
        assert!(Arc::ptr_eq(&a, &b));
    }
}
