//! Schema-versioned JSON export of a registry's current state.
//!
//! A snapshot is a point-in-time read of every registered metric,
//! serialized with the same hand-rolled [`crate::json`] writer the
//! bench reports use. The schema is versioned so downstream consumers
//! (the planned `wmx-serve` `/metrics` endpoint, CI validation) can
//! reject shapes they don't understand:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "counters": { "core.plan_cache.hits": 12 },
//!   "gauges": { "stream.peak_resident_nodes": 9 },
//!   "histograms": {
//!     "stream.chunk_micros": {
//!       "count": 4, "sum": 180, "min": 11, "max": 93,
//!       "buckets": [ { "le": 1, "count": 0 }, …, { "le": "+Inf", "count": 0 } ]
//!     }
//!   }
//! }
//! ```

use crate::json::{obj, Json};
use crate::metrics::{Histogram, BUCKET_BOUNDS_MICROS, BUCKET_COUNT};
use crate::registry::{global, Registry};

/// Version stamped into every snapshot; bump on shape changes.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

fn histogram_json(h: &Histogram) -> Json {
    let mut buckets = Vec::with_capacity(BUCKET_COUNT);
    for (idx, &bound) in BUCKET_BOUNDS_MICROS.iter().enumerate() {
        buckets.push(obj(vec![
            ("le", Json::Number(bound as f64)),
            ("count", Json::Number(h.bucket_count(idx) as f64)),
        ]));
    }
    buckets.push(obj(vec![
        ("le", Json::String("+Inf".to_string())),
        (
            "count",
            Json::Number(h.bucket_count(BUCKET_COUNT - 1) as f64),
        ),
    ]));
    obj(vec![
        ("count", Json::Number(h.count() as f64)),
        ("sum", Json::Number(h.sum() as f64)),
        (
            "min",
            h.min().map_or(Json::Null, |v| Json::Number(v as f64)),
        ),
        (
            "max",
            h.max().map_or(Json::Null, |v| Json::Number(v as f64)),
        ),
        ("buckets", Json::Array(buckets)),
    ])
}

/// Serializes `registry`'s current state.
pub fn snapshot(registry: &Registry) -> Json {
    let counters = registry
        .counters()
        .into_iter()
        .map(|(name, c)| (name, Json::Number(c.get() as f64)))
        .collect();
    let gauges = registry
        .gauges()
        .into_iter()
        .map(|(name, g)| (name, Json::Number(g.get() as f64)))
        .collect();
    let histograms = registry
        .histograms()
        .into_iter()
        .map(|(name, h)| (name, histogram_json(&h)))
        .collect();
    obj(vec![
        (
            "schema_version",
            Json::Number(SNAPSHOT_SCHEMA_VERSION as f64),
        ),
        ("counters", Json::Object(counters)),
        ("gauges", Json::Object(gauges)),
        ("histograms", Json::Object(histograms)),
    ])
}

/// Serializes the process-wide registry's current state.
pub fn global_snapshot() -> Json {
    snapshot(global())
}

/// Checks that `value` is a well-formed version-1 snapshot.
///
/// Verified: the schema version matches, the three sections are objects
/// of the right value shapes, every histogram has exactly
/// [`BUCKET_COUNT`] buckets ending in `"+Inf"`, and bucket counts sum
/// to the histogram's `count`.
pub fn validate_snapshot(value: &Json) -> Result<(), String> {
    let version = value
        .get("schema_version")
        .and_then(Json::as_usize)
        .ok_or("snapshot is missing a numeric schema_version")?;
    if version as u64 != SNAPSHOT_SCHEMA_VERSION {
        return Err(format!(
            "snapshot schema_version {version} != supported {SNAPSHOT_SCHEMA_VERSION}"
        ));
    }
    for section in ["counters", "gauges"] {
        let Some(Json::Object(members)) = value.get(section) else {
            return Err(format!("snapshot {section} section must be an object"));
        };
        for (name, v) in members {
            if v.as_f64().is_none() {
                return Err(format!("{section} entry {name:?} is not a number"));
            }
        }
    }
    let Some(Json::Object(histograms)) = value.get("histograms") else {
        return Err("snapshot histograms section must be an object".to_string());
    };
    for (name, h) in histograms {
        let count = h
            .get("count")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("histogram {name:?} is missing count"))?;
        h.get("sum")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram {name:?} is missing sum"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("histogram {name:?} is missing buckets"))?;
        if buckets.len() != BUCKET_COUNT {
            return Err(format!(
                "histogram {name:?} has {} buckets, expected {BUCKET_COUNT}",
                buckets.len()
            ));
        }
        let mut total = 0usize;
        for (idx, bucket) in buckets.iter().enumerate() {
            let is_last = idx == BUCKET_COUNT - 1;
            let le_ok = if is_last {
                bucket.get("le").and_then(Json::as_str) == Some("+Inf")
            } else {
                bucket.get("le").and_then(Json::as_usize)
                    == Some(BUCKET_BOUNDS_MICROS[idx] as usize)
            };
            if !le_ok {
                return Err(format!("histogram {name:?} bucket {idx} has a bad bound"));
            }
            total += bucket
                .get("count")
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("histogram {name:?} bucket {idx} is missing count"))?;
        }
        if total != count {
            return Err(format!(
                "histogram {name:?} buckets sum to {total} but count is {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("a.hits").add(7);
        reg.gauge("b.level").set(-3);
        let h = reg.histogram("c.lat");
        h.record(4);
        h.record(9_999_999);
        reg
    }

    #[test]
    fn snapshot_roundtrips_through_the_parser_and_validates() {
        let reg = populated();
        let snap = snapshot(&reg);
        let reparsed = Json::parse(&snap.to_pretty_string()).unwrap();
        assert_eq!(reparsed, snap);
        validate_snapshot(&reparsed).unwrap();

        assert_eq!(
            reparsed
                .get("counters")
                .and_then(|c| c.get("a.hits"))
                .and_then(Json::as_usize),
            Some(7)
        );
        assert_eq!(
            reparsed
                .get("gauges")
                .and_then(|g| g.get("b.level"))
                .and_then(Json::as_f64),
            Some(-3.0)
        );
        let hist = reparsed
            .get("histograms")
            .and_then(|h| h.get("c.lat"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_usize), Some(2));
        assert_eq!(hist.get("min").and_then(Json::as_usize), Some(4));
        assert_eq!(hist.get("max").and_then(Json::as_usize), Some(9_999_999));
    }

    #[test]
    fn empty_histogram_exports_null_min_max() {
        let reg = Registry::new();
        reg.histogram("empty");
        let snap = snapshot(&reg);
        let hist = snap.get("histograms").and_then(|h| h.get("empty")).unwrap();
        assert_eq!(hist.get("min"), Some(&Json::Null));
        assert_eq!(hist.get("max"), Some(&Json::Null));
        validate_snapshot(&snap).unwrap();
    }

    #[test]
    fn validator_rejects_broken_shapes() {
        let reg = populated();
        let good = snapshot(&reg);

        let mut wrong_version = good.clone();
        if let Json::Object(members) = &mut wrong_version {
            members[0].1 = Json::Number(99.0);
        }
        assert!(validate_snapshot(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));

        assert!(validate_snapshot(&Json::Object(vec![])).is_err());

        let mut bad_counter = good.clone();
        if let Json::Object(members) = &mut bad_counter {
            members[1].1 = Json::Object(vec![("x".into(), Json::Bool(true))]);
        }
        assert!(validate_snapshot(&bad_counter).is_err());

        let mut bad_count = good;
        if let Json::Object(members) = &mut bad_count {
            if let Json::Object(hists) = &mut members[3].1 {
                if let Json::Object(fields) = &mut hists[0].1 {
                    fields[0].1 = Json::Number(999.0);
                }
            }
        }
        assert!(validate_snapshot(&bad_count)
            .unwrap_err()
            .contains("sum to"));
    }

    #[test]
    fn global_snapshot_includes_globally_registered_metrics() {
        global().counter("test.snapshot.global_marker").inc();
        let snap = global_snapshot();
        validate_snapshot(&snap).unwrap();
        assert!(snap
            .get("counters")
            .and_then(|c| c.get("test.snapshot.global_marker"))
            .is_some());
    }
}
