//! RAII spans for phase timing.
//!
//! A [`Span`] measures one named phase: creating it notes the start
//! time, dropping it records the elapsed microseconds into the global
//! histogram `span.<name>`. Span names are `&'static str` so entering a
//! span never allocates.
//!
//! Spans additionally feed an optional *trace*: when tracing is enabled
//! (CLI `--trace` / `--audit-log`), enter/exit events accumulate in a
//! thread-local buffer which [`take_trace`] drains into a list of
//! [`TraceEvent`]s. [`render_trace`] pretty-prints them as an indented
//! tree and [`phase_totals`] folds them into per-phase totals for audit
//! events. The enabled flag is a single Relaxed atomic load when off,
//! so instrumented library code costs one branch per span when nobody
//! is tracing.
//!
//! Spans are invocation-granular (one embed/detect call), not
//! per-record: the streaming engines record chunk-level metrics
//! directly through [`crate::metrics`] instead.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::registry::global;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static TRACE_EVENTS: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

/// One edge of a span, as buffered by the tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span named `.0` opened.
    Enter(&'static str),
    /// The innermost open span closed after `.0` microseconds.
    Exit(u64),
}

/// Turns trace buffering on for the whole process.
///
/// Only the calling thread's buffer is drained by [`take_trace`];
/// events recorded by other threads while tracing is on stay in their
/// own thread-local buffers and are discarded when those threads exit.
pub fn enable_trace() {
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Turns trace buffering off.
pub fn disable_trace() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

/// Drains and returns this thread's buffered trace events.
pub fn take_trace() -> Vec<TraceEvent> {
    TRACE_EVENTS.with(|events| events.take())
}

/// A live phase timer; drop it to record the phase duration.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Opens a span named `name`.
///
/// The duration lands in the global histogram `span.<name>` when the
/// returned guard drops, and in the trace buffer when tracing is on.
pub fn span(name: &'static str) -> Span {
    if TRACE_ENABLED.load(Ordering::Relaxed) {
        TRACE_EVENTS.with(|events| events.borrow_mut().push(TraceEvent::Enter(name)));
    }
    Span {
        name,
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Histogram registration allocates on the first drop of each
        // span name; subsequent drops hit the registry's fast lookup.
        // Span scope is per-invocation, so this is off the record path.
        let mut name = String::with_capacity(5 + self.name.len());
        name.push_str("span.");
        name.push_str(self.name);
        global().histogram(&name).record(micros);
        if TRACE_ENABLED.load(Ordering::Relaxed) {
            TRACE_EVENTS.with(|events| events.borrow_mut().push(TraceEvent::Exit(micros)));
        }
    }
}

/// Folds a trace into `(phase name, total microseconds)` pairs, ordered
/// by first appearance. Nested spans count toward their own phase only,
/// not their parent's (the parent's total already includes them).
pub fn phase_totals(events: &[TraceEvent]) -> Vec<(&'static str, u64)> {
    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    let mut stack: Vec<&'static str> = Vec::new();
    for event in events {
        match event {
            TraceEvent::Enter(name) => stack.push(name),
            TraceEvent::Exit(micros) => {
                let Some(name) = stack.pop() else { continue };
                match totals.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += micros,
                    None => totals.push((name, *micros)),
                }
            }
        }
    }
    totals
}

/// Renders a trace as an indented tree, one span per line:
///
/// ```text
/// detect                         12_345 µs
///   detect.resolve                  210 µs
///   detect.select                 9_876 µs
/// ```
pub fn render_trace(events: &[TraceEvent]) -> String {
    // Events arrive in enter/exit order; reconstruct nesting with a
    // stack, emitting each span's line at its Enter and patching the
    // duration in at its Exit.
    struct Node {
        name: &'static str,
        depth: usize,
        micros: Option<u64>,
        children: Vec<Node>,
    }
    fn close(stack: &mut Vec<Node>, roots: &mut Vec<Node>, micros: u64) {
        if let Some(mut node) = stack.pop() {
            node.micros = Some(micros);
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => roots.push(node),
            }
        }
    }
    fn write_node(out: &mut String, node: &Node) {
        for _ in 0..node.depth {
            out.push_str("  ");
        }
        out.push_str(node.name);
        let width = 30usize.saturating_sub(node.depth * 2 + node.name.len());
        for _ in 0..width.max(1) {
            out.push(' ');
        }
        match node.micros {
            Some(micros) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{micros:>9} µs");
            }
            None => out.push_str("  (unclosed)"),
        }
        out.push('\n');
        for child in &node.children {
            write_node(out, child);
        }
    }

    let mut roots: Vec<Node> = Vec::new();
    let mut stack: Vec<Node> = Vec::new();
    for event in events {
        match event {
            TraceEvent::Enter(name) => stack.push(Node {
                name,
                depth: stack.len(),
                micros: None,
                children: Vec::new(),
            }),
            TraceEvent::Exit(micros) => close(&mut stack, &mut roots, *micros),
        }
    }
    // Unbalanced traces (a span leaked across a panic) still render.
    while let Some(mut node) = stack.pop() {
        node.micros = None;
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => roots.push(node),
        }
    }
    let mut out = String::new();
    for root in &roots {
        write_node(&mut out, root);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_the_global_histogram() {
        let h = global().histogram("span.test_span_records");
        let before = h.count();
        {
            let _s = span("test_span_records");
        }
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn trace_captures_nesting_in_order() {
        enable_trace();
        take_trace(); // discard anything a previous test left behind
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        disable_trace();
        let events = take_trace();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], TraceEvent::Enter("outer"));
        assert_eq!(events[1], TraceEvent::Enter("inner"));
        assert!(matches!(events[2], TraceEvent::Exit(_)));
        assert!(matches!(events[3], TraceEvent::Exit(_)));
    }

    #[test]
    fn tracing_off_buffers_nothing() {
        disable_trace();
        take_trace();
        {
            let _s = span("untraced");
        }
        assert!(take_trace().is_empty());
    }

    #[test]
    fn phase_totals_fold_repeats_and_keep_order() {
        let events = vec![
            TraceEvent::Enter("detect"),
            TraceEvent::Enter("detect.select"),
            TraceEvent::Exit(10),
            TraceEvent::Enter("detect.select"),
            TraceEvent::Exit(5),
            TraceEvent::Exit(100),
        ];
        let totals = phase_totals(&events);
        assert_eq!(totals, vec![("detect.select", 15), ("detect", 100)]);
    }

    #[test]
    fn render_trace_indents_children() {
        let events = vec![
            TraceEvent::Enter("detect"),
            TraceEvent::Enter("detect.select"),
            TraceEvent::Exit(10),
            TraceEvent::Exit(42),
        ];
        let text = render_trace(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("detect"));
        assert!(lines[0].ends_with("42 µs"));
        assert!(lines[1].starts_with("  detect.select"));
        assert!(lines[1].ends_with("10 µs"));
    }

    #[test]
    fn render_trace_marks_unclosed_spans() {
        let events = vec![TraceEvent::Enter("leaked")];
        let text = render_trace(&events);
        assert!(text.contains("leaked"));
        assert!(text.contains("(unclosed)"));
    }
}
