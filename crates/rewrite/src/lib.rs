//! Schema bindings, mappings, query rewriting, and mapping-driven
//! document reorganization.
//!
//! The paper's Fig. 2 shows detection queries being *rewritten* through
//! schema mappings when an adversary reorganizes a document (db1.xml →
//! db2.xml in its Fig. 1). The original system did this semi-manually
//! ("the query rewriter still needs human intervention"); this crate
//! mechanizes it:
//!
//! * [`binding`] — a [`SchemaBinding`] maps *logical* entities and
//!   attributes (book, title, publisher, …) to concrete access paths in
//!   one physical schema. db1 and db2 are two bindings of the same
//!   logical model.
//! * [`logical`] — a [`LogicalQuery`] is the schema-independent form of
//!   an identity query: *attribute A of the entity E whose key is k*.
//!   Compiling it under a binding yields a concrete XPath query.
//! * [`mapping`] — a [`SchemaMapping`] pairs two bindings of the same
//!   logical model and checks they are compatible.
//! * [`rewrite`] — rewrites a *concrete* XPath identity query from one
//!   binding to another by recovering its logical form (the automated
//!   counterpart of the paper's by-hand rewriting).
//! * [`transform`] — extracts the logical records behind a binding and
//!   recomposes them under a different layout: the db1→db2 reorganizer,
//!   which doubles as the re-organization attack (demo attack C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod logical;
pub mod mapping;
pub mod rewrite;
pub mod transform;

pub use binding::{AttrBinding, EntityBinding, SchemaBinding};
pub use logical::LogicalQuery;
pub use mapping::SchemaMapping;
pub use rewrite::rewrite_query;
pub use transform::{extract_records, reorganize, FieldPlacement, Layout, Record};

/// Errors raised by binding construction, rewriting, or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteError {
    /// Human-readable description.
    pub message: String,
}

impl RewriteError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        RewriteError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RewriteError {}

impl From<wmx_xpath::XPathError> for RewriteError {
    fn from(e: wmx_xpath::XPathError) -> Self {
        RewriteError::new(format!("query error: {e}"))
    }
}
