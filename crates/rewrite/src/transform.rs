//! Mapping-driven document reorganization.
//!
//! The adversary of demo attack (C) "reorganize\[s\] the data according
//! to a new schema" without losing information — the paper's Fig. 1 shows
//! db1.xml regrouped into db2.xml (books nested under publisher/author).
//! This module implements that transformation generically:
//!
//! 1. [`extract_records`] flattens an entity's instances into logical
//!    [`Record`]s (key + multi-valued attributes) using a
//!    [`SchemaBinding`];
//! 2. [`Layout`] describes the target tree shape (arbitrary group-by
//!    nesting over attributes, then a record element);
//! 3. [`compose`] builds the reorganized document;
//! 4. [`reorganize`] chains the two.
//!
//! Grouping by a multi-valued attribute (author) duplicates records per
//! value, exactly as the paper's db2.xml repeats a book under each of its
//! authors.

use crate::binding::SchemaBinding;
use crate::RewriteError;
use std::collections::BTreeMap;
use wmx_xml::{Document, ElementBuilder};

/// A flat logical record: the entity key plus multi-valued attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The key value.
    pub key: String,
    /// Logical attribute → values (deduplicated, first-seen order).
    pub fields: BTreeMap<String, Vec<String>>,
}

impl Record {
    /// First value of a field.
    pub fn first(&self, attr: &str) -> Option<&str> {
        self.fields
            .get(attr)
            .and_then(|v| v.first())
            .map(|s| s.as_str())
    }

    /// All values of a field.
    pub fn values(&self, attr: &str) -> &[String] {
        self.fields.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Restriction of the record to the given attributes (for comparing
    /// across schemas that bind different attribute subsets).
    pub fn project(&self, attrs: &[&str]) -> Record {
        Record {
            key: self.key.clone(),
            fields: self
                .fields
                .iter()
                .filter(|(k, _)| attrs.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// Extracts the logical records of `entity` from `doc` under `binding`.
/// Instances sharing a key are merged; attribute values are deduplicated.
pub fn extract_records(
    doc: &Document,
    binding: &SchemaBinding,
    entity: &str,
) -> Result<Vec<Record>, RewriteError> {
    let entity_binding = binding.entity(entity).ok_or_else(|| {
        RewriteError::new(format!(
            "binding {} does not bind entity {entity}",
            binding.name
        ))
    })?;
    let mut by_key: BTreeMap<String, Record> = BTreeMap::new();
    for instance in entity_binding.instances(doc) {
        let Some(key) = entity_binding.key_of(doc, &instance) else {
            continue; // keyless instances carry no identity
        };
        let record = by_key.entry(key.clone()).or_insert_with(|| Record {
            key,
            fields: BTreeMap::new(),
        });
        for attr in entity_binding.attrs.keys() {
            let values = entity_binding.attr_values(doc, &instance, attr);
            let slot = record.fields.entry(attr.clone()).or_default();
            for v in values {
                if !slot.contains(&v) {
                    slot.push(v);
                }
            }
        }
    }
    Ok(by_key.into_values().collect())
}

/// Where a field's value goes in the composed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldPlacement {
    /// As an XML attribute of this element.
    Attribute(String),
    /// As the text of a child element.
    ChildText(String),
    /// As the element's own text content.
    SelfText,
}

/// Target tree shape for [`compose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// One element per record.
    Flat {
        /// Name of the per-record element.
        record_element: String,
        /// (logical attribute, placement) pairs. Multi-valued attributes
        /// placed as `ChildText` produce one child per value; `Attribute`
        /// and `SelfText` placements use the first value.
        fields: Vec<(String, FieldPlacement)>,
    },
    /// Group records by an attribute's values, one group element per
    /// distinct value; records with several values of the attribute join
    /// several groups (the paper's db2 author nesting).
    GroupBy {
        /// The grouping logical attribute.
        attr: String,
        /// Name of the group element.
        element: String,
        /// Where the group's value is written on the group element.
        label: FieldPlacement,
        /// Layout of each group's content.
        inner: Box<Layout>,
    },
}

/// Composes a document with root `root` from `records` per `layout`.
pub fn compose(records: &[Record], root: &str, layout: &Layout) -> Document {
    let mut builder = ElementBuilder::new(root);
    builder = compose_into(builder, records, layout);
    builder.into_document()
}

fn compose_into(parent: ElementBuilder, records: &[Record], layout: &Layout) -> ElementBuilder {
    match layout {
        Layout::Flat {
            record_element,
            fields,
        } => {
            let mut parent = parent;
            for record in records {
                let mut el = ElementBuilder::new(record_element.clone());
                for (attr, placement) in fields {
                    let values = record.values(attr);
                    match placement {
                        FieldPlacement::Attribute(name) => {
                            if let Some(v) = values.first() {
                                el = el.attr(name.clone(), v.clone());
                            }
                        }
                        FieldPlacement::ChildText(name) => {
                            for v in values {
                                el = el.leaf(name.clone(), v.clone());
                            }
                        }
                        FieldPlacement::SelfText => {
                            if let Some(v) = values.first() {
                                el = el.text(v.clone());
                            }
                        }
                    }
                }
                parent = parent.child(el);
            }
            parent
        }
        Layout::GroupBy {
            attr,
            element,
            label,
            inner,
        } => {
            // Partition records by each value of the grouping attribute.
            let mut groups: BTreeMap<String, Vec<Record>> = BTreeMap::new();
            for record in records {
                for value in record.values(attr) {
                    groups
                        .entry(value.clone())
                        .or_default()
                        .push(record.clone());
                }
            }
            let mut parent = parent;
            for (value, members) in groups {
                let mut el = ElementBuilder::new(element.clone());
                match label {
                    FieldPlacement::Attribute(name) => el = el.attr(name.clone(), value),
                    FieldPlacement::ChildText(name) => el = el.leaf(name.clone(), value),
                    FieldPlacement::SelfText => el = el.text(value),
                }
                el = compose_into(el, &members, inner);
                parent = parent.child(el);
            }
            parent
        }
    }
}

/// Extracts the records behind `entity` (under `from`) and recomposes
/// them under `layout` with root `root` — the full re-organization.
pub fn reorganize(
    doc: &Document,
    from: &SchemaBinding,
    entity: &str,
    root: &str,
    layout: &Layout,
) -> Result<Document, RewriteError> {
    let records = extract_records(doc, from, entity)?;
    Ok(compose(&records, root, layout))
}

/// The layout of the paper's db2.xml: publisher → author → book leaves.
pub fn paper_db2_layout() -> Layout {
    Layout::GroupBy {
        attr: "publisher".into(),
        element: "publisher".into(),
        label: FieldPlacement::Attribute("name".into()),
        inner: Box::new(Layout::GroupBy {
            attr: "author".into(),
            element: "author".into(),
            label: FieldPlacement::Attribute("name".into()),
            inner: Box::new(Layout::Flat {
                record_element: "book".into(),
                fields: vec![("title".into(), FieldPlacement::SelfText)],
            }),
        }),
    }
}

/// The layout of the paper's db1.xml: flat book records.
pub fn paper_db1_layout() -> Layout {
    Layout::Flat {
        record_element: "book".into(),
        fields: vec![
            (
                "publisher".into(),
                FieldPlacement::Attribute("publisher".into()),
            ),
            ("title".into(), FieldPlacement::ChildText("title".into())),
            ("author".into(), FieldPlacement::ChildText("author".into())),
            ("editor".into(), FieldPlacement::ChildText("editor".into())),
            ("year".into(), FieldPlacement::ChildText("year".into())),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{paper_db1_binding, paper_db2_binding};
    use wmx_xml::{parse, to_canonical_string};

    fn db1_doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings in Database Systems</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <editor>Harrypotter</editor>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>Database Design</title>
                    <author>Berstein</author>
                    <author>Newcomer</author>
                    <editor>Gamer</editor>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap()
    }

    #[test]
    fn extracts_merged_records() {
        let records = extract_records(&db1_doc(), &paper_db1_binding(), "book").unwrap();
        assert_eq!(records.len(), 2);
        let readings = records
            .iter()
            .find(|r| r.key == "Readings in Database Systems")
            .unwrap();
        assert_eq!(readings.values("author"), ["Stonebraker", "Hellerstein"]);
        assert_eq!(readings.first("publisher"), Some("mkp"));
        assert_eq!(readings.first("year"), Some("1998"));
    }

    #[test]
    fn reorganizes_db1_to_db2_shape() {
        let doc2 = reorganize(
            &db1_doc(),
            &paper_db1_binding(),
            "book",
            "db",
            &paper_db2_layout(),
        )
        .unwrap();
        let root = doc2.root_element().unwrap();
        let publishers: Vec<_> = doc2.child_elements_named(root, "publisher").collect();
        assert_eq!(publishers.len(), 2);
        // acm sorts before mkp in BTreeMap order.
        assert_eq!(doc2.attribute(publishers[0], "name"), Some("acm"));
        let authors: Vec<_> = doc2.child_elements_named(publishers[0], "author").collect();
        assert_eq!(authors.len(), 2); // Berstein, Newcomer
        let book = doc2.first_child_element(authors[0], "book").unwrap();
        assert_eq!(doc2.text_content(book), "Database Design");
    }

    #[test]
    fn reorganization_preserves_logical_records() {
        // Information-preservation claim of Fig. 1: extract from the
        // reorganized doc (under db2's binding) and compare to the
        // original records, projected to the attributes both schemas bind.
        let original = extract_records(&db1_doc(), &paper_db1_binding(), "book").unwrap();
        let doc2 = reorganize(
            &db1_doc(),
            &paper_db1_binding(),
            "book",
            "db",
            &paper_db2_layout(),
        )
        .unwrap();
        let roundtripped = extract_records(&doc2, &paper_db2_binding(), "book").unwrap();

        let shared = ["title", "author", "publisher"];
        let a: Vec<Record> = original.iter().map(|r| r.project(&shared)).collect();
        let mut b: Vec<Record> = roundtripped.iter().map(|r| r.project(&shared)).collect();
        // Author order may differ (grouped alphabetically); normalize.
        let normalize = |rs: &mut Vec<Record>| {
            for r in rs.iter_mut() {
                for v in r.fields.values_mut() {
                    v.sort();
                }
            }
            rs.sort_by(|x, y| x.key.cmp(&y.key));
        };
        let mut a = a;
        normalize(&mut a);
        normalize(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_back_to_flat_layout() {
        let doc2 = reorganize(
            &db1_doc(),
            &paper_db1_binding(),
            "book",
            "db",
            &paper_db2_layout(),
        )
        .unwrap();
        // db2 → flat again (editor/year are lost: db2 does not bind them).
        let doc1_again = reorganize(
            &doc2,
            &paper_db2_binding(),
            "book",
            "db",
            &Layout::Flat {
                record_element: "book".into(),
                fields: vec![
                    (
                        "publisher".into(),
                        FieldPlacement::Attribute("publisher".into()),
                    ),
                    ("title".into(), FieldPlacement::ChildText("title".into())),
                    ("author".into(), FieldPlacement::ChildText("author".into())),
                ],
            },
        )
        .unwrap();
        let records = extract_records(&doc1_again, &paper_db1_binding(), "book").unwrap();
        assert_eq!(records.len(), 2);
        let readings = records
            .iter()
            .find(|r| r.key == "Readings in Database Systems")
            .unwrap();
        let mut authors = readings.values("author").to_vec();
        authors.sort();
        assert_eq!(authors, ["Hellerstein", "Stonebraker"]);
    }

    #[test]
    fn compose_is_deterministic() {
        let records = extract_records(&db1_doc(), &paper_db1_binding(), "book").unwrap();
        let a = compose(&records, "db", &paper_db2_layout());
        let b = compose(&records, "db", &paper_db2_layout());
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn child_text_label_grouping() {
        let records = extract_records(&db1_doc(), &paper_db1_binding(), "book").unwrap();
        let layout = Layout::GroupBy {
            attr: "editor".into(),
            element: "editor".into(),
            label: FieldPlacement::ChildText("name".into()),
            inner: Box::new(Layout::Flat {
                record_element: "work".into(),
                fields: vec![("title".into(), FieldPlacement::SelfText)],
            }),
        };
        let doc = compose(&records, "catalog", &layout);
        let root = doc.root_element().unwrap();
        let editors: Vec<_> = doc.child_elements_named(root, "editor").collect();
        assert_eq!(editors.len(), 2);
        let name = doc.first_child_element(editors[0], "name").unwrap();
        assert_eq!(doc.text_content(name), "Gamer");
    }

    #[test]
    fn unknown_entity_errors() {
        assert!(extract_records(&db1_doc(), &paper_db1_binding(), "journal").is_err());
    }
}
