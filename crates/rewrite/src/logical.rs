//! Logical (schema-independent) identity queries.
//!
//! A [`LogicalQuery`] captures *what* an identity query retrieves —
//! "attribute `A` of the entity `E` whose key is `k`" — without fixing
//! *how* it is navigated. Compiling under a [`SchemaBinding`] produces
//! the concrete XPath form; compiling the same logical query under the
//! attacker's reorganized binding *is* query rewriting (paper Fig. 2).

use crate::binding::{AttrBinding, SchemaBinding};
use crate::RewriteError;
use std::fmt;
use wmx_xpath::ast::{Expr, PathExpr};
use wmx_xpath::parser::parse_path;
use wmx_xpath::Query;

/// A schema-independent identity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalQuery {
    /// Logical entity name.
    pub entity: String,
    /// The key value selecting one instance (or one redundancy-free
    /// instance group).
    pub key_value: String,
    /// The logical attribute to retrieve.
    pub attr: String,
}

impl LogicalQuery {
    /// Creates a logical query.
    pub fn new(entity: &str, key_value: &str, attr: &str) -> Self {
        LogicalQuery {
            entity: entity.to_string(),
            key_value: key_value.to_string(),
            attr: attr.to_string(),
        }
    }

    /// Compiles to a concrete query under `binding`:
    /// `instance_path[key_path = 'key_value']/attr_path`.
    pub fn compile(&self, binding: &SchemaBinding) -> Result<Query, RewriteError> {
        let entity = binding.entity(&self.entity).ok_or_else(|| {
            RewriteError::new(format!(
                "binding {} does not bind entity {}",
                binding.name, self.entity
            ))
        })?;
        let attr_binding = entity.attr(&self.attr).ok_or_else(|| {
            RewriteError::new(format!(
                "binding {}: entity {} has no attribute {}",
                binding.name, self.entity, self.attr
            ))
        })?;

        // Fast path: assemble from the prototypes the binding parsed at
        // construction (semantically identical to the re-parsing path
        // below, which only remains to produce parse errors for
        // bindings whose paths never compiled).
        if let Some(query) = entity.identity_query(&self.key_value, &self.attr) {
            return Ok(query);
        }

        let mut path: PathExpr = parse_path(&entity.instance_path)?;
        let key_rel: PathExpr = parse_path(&entity.key_binding().to_path_text())?;
        let predicate = Expr::eq(Expr::Path(key_rel), Expr::Literal(self.key_value.clone()));
        let last = path
            .steps
            .last_mut()
            .ok_or_else(|| RewriteError::new("entity instance path has no steps"))?;
        last.predicates.push(predicate);

        // Append the attribute access path, unless it is the instance
        // itself (SelfText), in which case the instance node is returned.
        if !matches!(attr_binding, AttrBinding::SelfText) {
            let attr_rel: PathExpr = parse_path(&attr_binding.to_path_text())?;
            path.steps.extend(attr_rel.steps);
        }
        Ok(Query::from_expr(Expr::Path(path)))
    }
}

impl fmt::Display for LogicalQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[key = {:?}].{}",
            self.entity, self.key_value, self.attr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{paper_db1_binding, paper_db2_binding};
    use wmx_xml::parse;

    #[test]
    fn compiles_paper_query_under_db1() {
        let q = LogicalQuery::new("book", "DB Design", "author");
        let compiled = q.compile(&paper_db1_binding()).unwrap();
        assert_eq!(compiled.to_string(), "/db/book[title = 'DB Design']/author");
    }

    #[test]
    fn compiles_paper_query_under_db2() {
        let q = LogicalQuery::new("book", "DB Design", "author");
        let compiled = q.compile(&paper_db2_binding()).unwrap();
        assert_eq!(
            compiled.to_string(),
            "/db/publisher/author/book[. = 'DB Design']/../@name"
        );
    }

    #[test]
    fn compiled_queries_retrieve_same_logical_value() {
        // The paper's §2.1 usability argument: both documents answer
        // "who wrote DB Design" identically.
        let db1 = parse(
            r#"<db><book publisher="acm"><title>DB Design</title><author>Berstein</author><year>1998</year></book></db>"#,
        )
        .unwrap();
        let db2 = parse(
            r#"<db><publisher name="acm"><author name="Berstein"><book>DB Design</book></author></publisher></db>"#,
        )
        .unwrap();
        let q = LogicalQuery::new("book", "DB Design", "author");
        let v1 = q
            .compile(&paper_db1_binding())
            .unwrap()
            .select_string(&db1)
            .unwrap();
        let v2 = q
            .compile(&paper_db2_binding())
            .unwrap()
            .select_string(&db2)
            .unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1, "Berstein");
    }

    #[test]
    fn self_text_attribute_selects_instance() {
        let q = LogicalQuery::new("book", "DB Design", "title");
        let compiled = q.compile(&paper_db2_binding()).unwrap();
        assert_eq!(
            compiled.to_string(),
            "/db/publisher/author/book[. = 'DB Design']"
        );
    }

    #[test]
    fn unknown_entity_and_attr_rejected() {
        let binding = paper_db1_binding();
        assert!(LogicalQuery::new("journal", "x", "title")
            .compile(&binding)
            .is_err());
        assert!(LogicalQuery::new("book", "x", "isbn")
            .compile(&binding)
            .is_err());
    }

    #[test]
    fn key_values_with_quotes_compile() {
        let q = LogicalQuery::new("book", "O'Reilly's Guide", "year");
        let compiled = q.compile(&paper_db1_binding()).unwrap();
        // Double-quoted literal in the rendered form.
        assert!(compiled.to_string().contains("\"O'Reilly's Guide\""));
        // And it must re-compile.
        assert!(Query::compile(&compiled.to_string()).is_ok());
    }
}
