//! Concrete query rewriting: recover the logical form of an XPath
//! identity query under a source binding, then compile it under the
//! target binding.
//!
//! This automates the step the paper left to a human: given the query
//! `db/book[title='DB Design']/author` and the db1↔db2 mapping, produce
//! `db/publisher/author[book='DB Design']/@name` (we emit the equivalent
//! `/db/publisher/author/book[. = 'DB Design']/../@name`, which selects
//! the same nodes — navigation order differs, result does not).

use crate::binding::SchemaBinding;
use crate::logical::LogicalQuery;
use crate::mapping::SchemaMapping;
use crate::RewriteError;
use wmx_xpath::ast::{Axis, Expr, NodeTest, PathExpr, Step};
use wmx_xpath::parser::parse_path;
use wmx_xpath::Query;

/// Rewrites `query` (an identity query created against `from`) into an
/// equivalent query against `to`.
pub fn rewrite_query(
    query: &Query,
    from: &SchemaBinding,
    to: &SchemaBinding,
) -> Result<Query, RewriteError> {
    let logical = recover_logical(query, from)?;
    logical.compile(to)
}

/// Convenience: rewrite through a [`SchemaMapping`].
pub fn rewrite_through(query: &Query, mapping: &SchemaMapping) -> Result<Query, RewriteError> {
    rewrite_query(query, &mapping.from, &mapping.to)
}

/// Recovers the [`LogicalQuery`] behind a concrete identity query, if it
/// matches the shape `instance_path[key = 'value']/attr_path` for some
/// entity of `binding`.
pub fn recover_logical(
    query: &Query,
    binding: &SchemaBinding,
) -> Result<LogicalQuery, RewriteError> {
    let Expr::Path(path) = query.expr() else {
        return Err(RewriteError::new(format!(
            "query {query} is not a location path"
        )));
    };

    for entity in binding.entities.values() {
        let instance: PathExpr = parse_path(&entity.instance_path)?;
        let n = instance.steps.len();
        if path.steps.len() < n {
            continue;
        }
        // Steps before the instance step must match exactly (no
        // predicates); the instance step must match modulo predicates.
        let prefix_matches = path.steps[..n - 1]
            .iter()
            .zip(&instance.steps[..n - 1])
            .all(|(a, b)| steps_equal_no_predicates(a, b))
            && step_matches_ignoring_predicates(&path.steps[n - 1], &instance.steps[n - 1]);
        if !prefix_matches {
            continue;
        }

        // Extract the key value from the instance step's predicates.
        let key_rel: PathExpr = parse_path(&entity.key_binding().to_path_text())?;
        let Some(key_value) = extract_key_value(&path.steps[n - 1].predicates, &key_rel) else {
            continue;
        };

        // The remaining steps must equal one bound attribute's path.
        let suffix = &path.steps[n..];
        for (attr_name, attr_binding) in &entity.attrs {
            let attr_rel: PathExpr = parse_path(&attr_binding.to_path_text())?;
            let attr_steps: &[Step] = match attr_binding {
                crate::binding::AttrBinding::SelfText => &[],
                _ => &attr_rel.steps,
            };
            let matches = suffix.len() == attr_steps.len()
                && suffix
                    .iter()
                    .zip(attr_steps)
                    .all(|(a, b)| steps_equal_no_predicates(a, b));
            // SelfText also matches a single `self::node()` step.
            let self_match = attr_steps.is_empty()
                && suffix.len() == 1
                && suffix[0].axis == Axis::SelfAxis
                && suffix[0].test == NodeTest::AnyNode;
            if matches || self_match {
                return Ok(LogicalQuery::new(&entity.entity, &key_value, attr_name));
            }
        }
    }
    Err(RewriteError::new(format!(
        "query {query} does not match any identity-query pattern of binding {}",
        binding.name
    )))
}

fn steps_equal_no_predicates(a: &Step, b: &Step) -> bool {
    a.axis == b.axis && a.test == b.test && a.predicates.is_empty() && b.predicates.is_empty()
}

fn step_matches_ignoring_predicates(query_step: &Step, pattern: &Step) -> bool {
    query_step.axis == pattern.axis && query_step.test == pattern.test
}

/// Finds `key_rel = 'literal'` (either operand order) among predicates.
fn extract_key_value(predicates: &[Expr], key_rel: &PathExpr) -> Option<String> {
    for p in predicates {
        if let Expr::Binary {
            op: wmx_xpath::ast::BinaryOp::Eq,
            lhs,
            rhs,
        } = p
        {
            let candidates = [(lhs.as_ref(), rhs.as_ref()), (rhs.as_ref(), lhs.as_ref())];
            for (path_side, value_side) in candidates {
                if let (Expr::Path(pp), Expr::Literal(v)) = (path_side, value_side) {
                    if paths_equivalent(pp, key_rel) {
                        return Some(v.clone());
                    }
                }
            }
        }
    }
    None
}

/// Paths are equivalent for key matching when their steps agree; a bare
/// `.` (self::node()) matches the SelfText binding's empty-step form.
fn paths_equivalent(a: &PathExpr, b: &PathExpr) -> bool {
    if a.absolute != b.absolute {
        return false;
    }
    let norm = |p: &PathExpr| -> Vec<Step> {
        p.steps
            .iter()
            .filter(|s| !(s.axis == Axis::SelfAxis && s.test == NodeTest::AnyNode))
            .cloned()
            .collect()
    };
    let (na, nb) = (norm(a), norm(b));
    na.len() == nb.len()
        && na
            .iter()
            .zip(&nb)
            .all(|(x, y)| steps_equal_no_predicates(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{paper_db1_binding, paper_db2_binding};
    use wmx_xml::parse;

    fn db1_doc() -> wmx_xml::Document {
        parse(
            r#"<db><book publisher="acm"><title>DB Design</title><author>Berstein</author><year>1998</year></book></db>"#,
        )
        .unwrap()
    }

    fn db2_doc() -> wmx_xml::Document {
        parse(
            r#"<db><publisher name="acm"><author name="Berstein"><book>DB Design</book></author></publisher></db>"#,
        )
        .unwrap()
    }

    #[test]
    fn recovers_logical_form() {
        let q = Query::compile("/db/book[title='DB Design']/author").unwrap();
        let logical = recover_logical(&q, &paper_db1_binding()).unwrap();
        assert_eq!(logical, LogicalQuery::new("book", "DB Design", "author"));
    }

    #[test]
    fn recovers_with_reversed_predicate_operands() {
        let q = Query::compile("/db/book['DB Design' = title]/year").unwrap();
        let logical = recover_logical(&q, &paper_db1_binding()).unwrap();
        assert_eq!(logical.attr, "year");
    }

    #[test]
    fn rewrites_paper_example_end_to_end() {
        // The paper's §2.2 scenario: query created on db1, data
        // reorganized to db2, rewritten query retrieves the same value.
        let q1 = Query::compile("/db/book[title='DB Design']/author").unwrap();
        let original = q1.select_string(&db1_doc()).unwrap();

        let q2 = rewrite_query(&q1, &paper_db1_binding(), &paper_db2_binding()).unwrap();
        let rewritten = q2.select_string(&db2_doc()).unwrap();
        assert_eq!(original, rewritten);
        assert_eq!(rewritten, "Berstein");
    }

    #[test]
    fn rewrites_attribute_valued_query() {
        let q1 = Query::compile("/db/book[title='DB Design']/@publisher").unwrap();
        assert_eq!(q1.select_string(&db1_doc()).unwrap(), "acm");
        let q2 = rewrite_query(&q1, &paper_db1_binding(), &paper_db2_binding()).unwrap();
        assert_eq!(q2.select_string(&db2_doc()).unwrap(), "acm");
    }

    #[test]
    fn rewrites_key_selection_itself() {
        let q1 = Query::compile("/db/book[title='DB Design']/title").unwrap();
        let q2 = rewrite_query(&q1, &paper_db1_binding(), &paper_db2_binding()).unwrap();
        assert_eq!(q2.select_string(&db2_doc()).unwrap(), "DB Design");
    }

    #[test]
    fn reverse_direction_rewrite() {
        let q2 = Query::compile("/db/publisher/author/book[. = 'DB Design']/../@name").unwrap();
        assert_eq!(q2.select_string(&db2_doc()).unwrap(), "Berstein");
        let q1 = rewrite_query(&q2, &paper_db2_binding(), &paper_db1_binding()).unwrap();
        assert_eq!(q1.select_string(&db1_doc()).unwrap(), "Berstein");
    }

    #[test]
    fn unrewritable_attr_reports_error() {
        // editor is not bound in db2.
        let q = Query::compile("/db/book[title='DB Design']/editor").unwrap();
        let err = rewrite_query(&q, &paper_db1_binding(), &paper_db2_binding()).unwrap_err();
        assert!(err.message.contains("editor") || err.message.contains("attribute"));
    }

    #[test]
    fn non_identity_queries_rejected() {
        let binding = paper_db1_binding();
        for text in [
            "count(//book)",
            "/db/book/author",               // no key predicate
            "/other/book[title='X']/author", // wrong prefix
            "/db/book[year='1998']/author",  // predicate not on the key
        ] {
            let q = Query::compile(text).unwrap();
            assert!(
                recover_logical(&q, &binding).is_err(),
                "{text} should not be rewritable"
            );
        }
    }
}
