//! Schema mappings: pairs of bindings over the same logical model.

use crate::binding::SchemaBinding;
use crate::logical::LogicalQuery;
use crate::RewriteError;
use wmx_xpath::Query;

/// A mapping between two physical schemas of the same logical data.
///
/// This is the machine-readable form of the "mapping" arrows in the
/// paper's Fig. 2: enough information to rewrite any identity query
/// issued against `from` into an equivalent query against `to`.
#[derive(Debug, Clone)]
pub struct SchemaMapping {
    /// The source binding (the schema the queries were created against).
    pub from: SchemaBinding,
    /// The target binding (the reorganized schema).
    pub to: SchemaBinding,
}

impl SchemaMapping {
    /// Creates a mapping, checking that `to` binds every entity of
    /// `from` with at least the key attribute and that entity keys agree.
    pub fn new(from: SchemaBinding, to: SchemaBinding) -> Result<Self, RewriteError> {
        for (name, src) in &from.entities {
            let Some(dst) = to.entity(name) else {
                return Err(RewriteError::new(format!(
                    "mapping {} -> {}: entity {name} is not bound on the target side",
                    from.name, to.name
                )));
            };
            if src.key_attr != dst.key_attr {
                return Err(RewriteError::new(format!(
                    "mapping {} -> {}: entity {name} keys differ ({} vs {})",
                    from.name, to.name, src.key_attr, dst.key_attr
                )));
            }
        }
        Ok(SchemaMapping { from, to })
    }

    /// Attributes of `entity` representable on both sides (rewritable
    /// identity queries can only target these).
    pub fn shared_attrs(&self, entity: &str) -> Vec<String> {
        let (Some(src), Some(dst)) = (self.from.entity(entity), self.to.entity(entity)) else {
            return Vec::new();
        };
        src.attrs
            .keys()
            .filter(|a| dst.attrs.contains_key(*a))
            .cloned()
            .collect()
    }

    /// Rewrites a logical query to the target schema (compilation under
    /// the target binding).
    pub fn rewrite_logical(&self, query: &LogicalQuery) -> Result<Query, RewriteError> {
        query.compile(&self.to)
    }

    /// The inverse mapping.
    pub fn inverse(&self) -> SchemaMapping {
        SchemaMapping {
            from: self.to.clone(),
            to: self.from.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{paper_db1_binding, paper_db2_binding, AttrBinding, EntityBinding};

    #[test]
    fn paper_mapping_constructs() {
        let m = SchemaMapping::new(paper_db1_binding(), paper_db2_binding()).unwrap();
        let shared = m.shared_attrs("book");
        assert!(shared.contains(&"title".to_string()));
        assert!(shared.contains(&"publisher".to_string()));
        assert!(shared.contains(&"author".to_string()));
        // editor/year exist only in db1.
        assert!(!shared.contains(&"editor".to_string()));
    }

    #[test]
    fn rewrite_logical_targets_to_side() {
        let m = SchemaMapping::new(paper_db1_binding(), paper_db2_binding()).unwrap();
        let q = LogicalQuery::new("book", "DB Design", "publisher");
        assert_eq!(
            m.rewrite_logical(&q).unwrap().to_string(),
            "/db/publisher/author/book[. = 'DB Design']/../../@name"
        );
    }

    #[test]
    fn inverse_swaps_sides() {
        let m = SchemaMapping::new(paper_db1_binding(), paper_db2_binding()).unwrap();
        let inv = m.inverse();
        assert_eq!(inv.from.name, "db2");
        assert_eq!(inv.to.name, "db1");
    }

    #[test]
    fn missing_target_entity_rejected() {
        let empty = SchemaBinding::new("empty", vec![]);
        assert!(SchemaMapping::new(paper_db1_binding(), empty).is_err());
    }

    #[test]
    fn key_mismatch_rejected() {
        let other = SchemaBinding::new(
            "other",
            vec![EntityBinding::new(
                "book",
                "/db/book",
                "isbn",
                vec![("isbn", AttrBinding::Attribute("isbn".into()))],
            )
            .unwrap()],
        );
        let err = SchemaMapping::new(paper_db1_binding(), other).unwrap_err();
        assert!(err.message.contains("keys differ"));
    }
}
