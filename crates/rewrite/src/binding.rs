//! Schema bindings: logical entities/attributes → concrete access paths.

use crate::RewriteError;
use std::collections::BTreeMap;
use wmx_xml::Document;
use wmx_xpath::{NodeRef, Query};

/// How a logical attribute is reached from an entity instance node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrBinding {
    /// The text content of a child element with this name.
    ChildText(String),
    /// An XML attribute on the instance element itself.
    Attribute(String),
    /// The instance element's own text content (for leaf entities, like
    /// `book` in the paper's db2.xml).
    SelfText,
    /// A general relative XPath (e.g. `"../../@name"` to reach the
    /// grouping publisher's name from a db2 book leaf).
    Path(String),
}

impl AttrBinding {
    /// The relative XPath text for this binding.
    pub fn to_path_text(&self) -> String {
        match self {
            AttrBinding::ChildText(name) => name.clone(),
            AttrBinding::Attribute(name) => format!("@{name}"),
            AttrBinding::SelfText => ".".to_string(),
            AttrBinding::Path(p) => p.clone(),
        }
    }

    /// Compiles the relative query.
    pub fn to_query(&self) -> Result<Query, RewriteError> {
        Query::compile(&self.to_path_text()).map_err(RewriteError::from)
    }
}

/// Binding of one logical entity onto a physical schema.
#[derive(Debug, Clone)]
pub struct EntityBinding {
    /// Logical entity name, e.g. `"book"`.
    pub entity: String,
    /// Absolute path selecting the instances, e.g. `"/db/book"`.
    pub instance_path: String,
    /// Name of the logical attribute acting as the entity key.
    pub key_attr: String,
    /// Logical attribute name → access path.
    pub attrs: BTreeMap<String, AttrBinding>,
    instance_query: Query,
}

impl EntityBinding {
    /// Creates a binding; `attrs` must contain `key_attr`.
    pub fn new(
        entity: &str,
        instance_path: &str,
        key_attr: &str,
        attrs: Vec<(&str, AttrBinding)>,
    ) -> Result<Self, RewriteError> {
        let attrs: BTreeMap<String, AttrBinding> =
            attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        if !attrs.contains_key(key_attr) {
            return Err(RewriteError::new(format!(
                "entity {entity}: key attribute {key_attr:?} is not bound"
            )));
        }
        let instance_query = Query::compile(instance_path)?;
        Ok(EntityBinding {
            entity: entity.to_string(),
            instance_path: instance_path.to_string(),
            key_attr: key_attr.to_string(),
            attrs,
            instance_query,
        })
    }

    /// All instances of the entity in `doc`, in document order.
    pub fn instances(&self, doc: &Document) -> Vec<NodeRef> {
        self.instance_query.select(doc)
    }

    /// The binding of a logical attribute.
    pub fn attr(&self, name: &str) -> Option<&AttrBinding> {
        self.attrs.get(name)
    }

    /// The binding of the key attribute.
    pub fn key_binding(&self) -> &AttrBinding {
        self.attrs
            .get(&self.key_attr)
            .expect("validated at construction")
    }

    /// Value nodes of a logical attribute for one instance.
    pub fn attr_nodes(&self, doc: &Document, instance: &NodeRef, name: &str) -> Vec<NodeRef> {
        match self.attr(name) {
            Some(binding) => match binding.to_query() {
                Ok(q) => q.select_from(doc, instance.clone()),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// First value of a logical attribute for one instance.
    pub fn attr_value(&self, doc: &Document, instance: &NodeRef, name: &str) -> Option<String> {
        self.attr_nodes(doc, instance, name)
            .first()
            .map(|n| n.string_value(doc))
    }

    /// All values of a logical attribute for one instance.
    pub fn attr_values(&self, doc: &Document, instance: &NodeRef, name: &str) -> Vec<String> {
        self.attr_nodes(doc, instance, name)
            .iter()
            .map(|n| n.string_value(doc))
            .collect()
    }

    /// The key value of one instance.
    pub fn key_of(&self, doc: &Document, instance: &NodeRef) -> Option<String> {
        self.attr_value(doc, instance, &self.key_attr)
    }
}

/// A named set of entity bindings describing one physical schema.
#[derive(Debug, Clone)]
pub struct SchemaBinding {
    /// Binding name, e.g. `"db1"`.
    pub name: String,
    /// Entity name → binding.
    pub entities: BTreeMap<String, EntityBinding>,
}

impl SchemaBinding {
    /// Creates a binding set.
    pub fn new(name: &str, entities: Vec<EntityBinding>) -> Self {
        SchemaBinding {
            name: name.to_string(),
            entities: entities
                .into_iter()
                .map(|e| (e.entity.clone(), e))
                .collect(),
        }
    }

    /// Looks up an entity binding.
    pub fn entity(&self, name: &str) -> Option<&EntityBinding> {
        self.entities.get(name)
    }
}

/// The paper's db1.xml binding (Fig. 1a): books are records with
/// publisher attribute, title/author/editor/year children.
pub fn paper_db1_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db1",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("author", AttrBinding::ChildText("author".into())),
                ("editor", AttrBinding::ChildText("editor".into())),
                ("year", AttrBinding::ChildText("year".into())),
                ("publisher", AttrBinding::Attribute("publisher".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

/// The paper's db2.xml binding (Fig. 1b): books are leaves grouped under
/// publisher/author; publisher and author are reached via parent steps.
pub fn paper_db2_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db2",
        vec![EntityBinding::new(
            "book",
            "/db/publisher/author/book",
            "title",
            vec![
                ("title", AttrBinding::SelfText),
                ("author", AttrBinding::Path("../@name".into())),
                ("publisher", AttrBinding::Path("../../@name".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn db1_doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings in Database Systems</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <editor>Harrypotter</editor>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>Database Design</title>
                    <author>Berstein</author>
                    <editor>Gamer</editor>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap()
    }

    fn db2_doc() -> Document {
        parse(
            r#"<db>
                <publisher name="mkp">
                    <author name="Stonebraker">
                        <book>Readings in Database Systems</book>
                    </author>
                    <author name="Hellerstein">
                        <book>Readings in Database Systems</book>
                    </author>
                </publisher>
                <publisher name="acm">
                    <author name="Berstein">
                        <book>Database Design</book>
                    </author>
                </publisher>
            </db>"#,
        )
        .unwrap()
    }

    #[test]
    fn db1_binding_reads_attributes() {
        let doc = db1_doc();
        let binding = paper_db1_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(instances.len(), 2);
        assert_eq!(
            book.key_of(&doc, &instances[0]).unwrap(),
            "Readings in Database Systems"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "publisher").unwrap(),
            "mkp"
        );
        assert_eq!(
            book.attr_values(&doc, &instances[0], "author"),
            vec!["Stonebraker", "Hellerstein"]
        );
        assert_eq!(
            book.attr_value(&doc, &instances[1], "year").unwrap(),
            "1998"
        );
    }

    #[test]
    fn db2_binding_reads_same_logical_data() {
        let doc = db2_doc();
        let binding = paper_db2_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(instances.len(), 3); // one per (author, book) pair
        assert_eq!(
            book.key_of(&doc, &instances[0]).unwrap(),
            "Readings in Database Systems"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "publisher").unwrap(),
            "mkp"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "author").unwrap(),
            "Stonebraker"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[2], "publisher").unwrap(),
            "acm"
        );
    }

    #[test]
    fn missing_attribute_yields_none() {
        let doc = db1_doc();
        let binding = paper_db1_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(book.attr_value(&doc, &instances[0], "missing"), None);
    }

    #[test]
    fn key_attr_must_be_bound() {
        let err = EntityBinding::new("x", "/a/x", "id", vec![]).unwrap_err();
        assert!(err.message.contains("key attribute"));
    }

    #[test]
    fn attr_binding_path_text() {
        assert_eq!(AttrBinding::ChildText("t".into()).to_path_text(), "t");
        assert_eq!(AttrBinding::Attribute("a".into()).to_path_text(), "@a");
        assert_eq!(AttrBinding::SelfText.to_path_text(), ".");
        assert_eq!(
            AttrBinding::Path("../@name".into()).to_path_text(),
            "../@name"
        );
    }
}
