//! Schema bindings: logical entities/attributes → concrete access paths.

use crate::RewriteError;
use std::collections::BTreeMap;
use wmx_xml::Document;
use wmx_xpath::ast::{Expr, PathExpr};
use wmx_xpath::parser::parse_path;
use wmx_xpath::{Evaluator, NodeRef, Query};

/// How a logical attribute is reached from an entity instance node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrBinding {
    /// The text content of a child element with this name.
    ChildText(String),
    /// An XML attribute on the instance element itself.
    Attribute(String),
    /// The instance element's own text content (for leaf entities, like
    /// `book` in the paper's db2.xml).
    SelfText,
    /// A general relative XPath (e.g. `"../../@name"` to reach the
    /// grouping publisher's name from a db2 book leaf).
    Path(String),
}

impl AttrBinding {
    /// The relative XPath text for this binding.
    pub fn to_path_text(&self) -> String {
        match self {
            AttrBinding::ChildText(name) => name.clone(),
            AttrBinding::Attribute(name) => format!("@{name}"),
            AttrBinding::SelfText => ".".to_string(),
            AttrBinding::Path(p) => p.clone(),
        }
    }

    /// Compiles the relative query.
    pub fn to_query(&self) -> Result<Query, RewriteError> {
        Query::compile(&self.to_path_text()).map_err(RewriteError::from)
    }
}

/// Binding of one logical entity onto a physical schema.
///
/// Construction compiles every access path **once**: the instance
/// query, one query per bound attribute, and the parsed path prototypes
/// identity queries are assembled from. The per-instance accessors
/// ([`EntityBinding::attr_nodes`], [`EntityBinding::key_of`], …) reuse
/// those compiled forms — the unit-enumeration hot path never re-parses
/// a path text.
#[derive(Debug, Clone)]
pub struct EntityBinding {
    /// Logical entity name, e.g. `"book"`.
    pub entity: String,
    /// Absolute path selecting the instances, e.g. `"/db/book"`.
    pub instance_path: String,
    /// Name of the logical attribute acting as the entity key.
    pub key_attr: String,
    /// Logical attribute name → access path. Attributes *added* here
    /// after construction are served by a compile-per-call fallback;
    /// *replacing* an existing binding in place is not supported (the
    /// construction-time caches would go stale) — build a new
    /// [`EntityBinding`] instead.
    pub attrs: BTreeMap<String, AttrBinding>,
    instance_query: Query,
    /// Compiled access queries per attribute (`None` when the bound
    /// path does not compile — such attributes locate no nodes, the
    /// same behaviour the lazily-compiling accessor had).
    attr_queries: BTreeMap<String, Option<Query>>,
    /// Parsed relative paths per attribute, for identity-query assembly.
    attr_rels: BTreeMap<String, Option<PathExpr>>,
    /// Parsed instance path + key path, for identity-query assembly
    /// (`None` when either fails to parse; identity construction then
    /// falls back to the re-parsing path and reports its error).
    identity_proto: Option<(PathExpr, PathExpr)>,
}

impl EntityBinding {
    /// Creates a binding; `attrs` must contain `key_attr`.
    pub fn new(
        entity: &str,
        instance_path: &str,
        key_attr: &str,
        attrs: Vec<(&str, AttrBinding)>,
    ) -> Result<Self, RewriteError> {
        let attrs: BTreeMap<String, AttrBinding> =
            attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        if !attrs.contains_key(key_attr) {
            return Err(RewriteError::new(format!(
                "entity {entity}: key attribute {key_attr:?} is not bound"
            )));
        }
        let instance_query = Query::compile(instance_path)?;
        let attr_queries: BTreeMap<String, Option<Query>> = attrs
            .iter()
            .map(|(name, binding)| (name.clone(), binding.to_query().ok()))
            .collect();
        let attr_rels: BTreeMap<String, Option<PathExpr>> = attrs
            .iter()
            .map(|(name, binding)| (name.clone(), parse_path(&binding.to_path_text()).ok()))
            .collect();
        let identity_proto = match (
            parse_path(instance_path),
            attr_rels.get(key_attr).cloned().flatten(),
        ) {
            (Ok(instance), Some(key_rel)) => Some((instance, key_rel)),
            _ => None,
        };
        Ok(EntityBinding {
            entity: entity.to_string(),
            instance_path: instance_path.to_string(),
            key_attr: key_attr.to_string(),
            attrs,
            instance_query,
            attr_queries,
            attr_rels,
            identity_proto,
        })
    }

    /// All instances of the entity in `doc`, in document order.
    pub fn instances(&self, doc: &Document) -> Vec<NodeRef> {
        self.instance_query.select(doc)
    }

    /// All instances, evaluated through a shared [`Evaluator`].
    pub fn instances_with(&self, evaluator: &Evaluator<'_>) -> Vec<NodeRef> {
        self.instance_query.select_with(evaluator)
    }

    /// The compiled instance query (selects all entity instances).
    /// Compiled selection plans clone this instead of re-parsing
    /// `instance_path`, so plan and binding agree by construction.
    pub fn instance_query(&self) -> &Query {
        &self.instance_query
    }

    /// The binding of a logical attribute.
    pub fn attr(&self, name: &str) -> Option<&AttrBinding> {
        self.attrs.get(name)
    }

    /// The compiled access query of a logical attribute (`None` when
    /// the attribute is unbound or its path does not compile).
    pub fn attr_query(&self, name: &str) -> Option<&Query> {
        self.attr_queries.get(name)?.as_ref()
    }

    /// The cache entry for `name`, or a freshly compiled query when the
    /// attribute was added to the public `attrs` map after construction
    /// (the caches cover construction-time attributes only; late
    /// additions fall back to the old compile-per-call behaviour rather
    /// than silently locating nothing).
    fn attr_query_or_compile(&self, name: &str) -> Option<std::borrow::Cow<'_, Query>> {
        match self.attr_queries.get(name) {
            Some(cached) => cached.as_ref().map(std::borrow::Cow::Borrowed),
            None => self
                .attr(name)
                .and_then(|binding| binding.to_query().ok())
                .map(std::borrow::Cow::Owned),
        }
    }

    /// The binding of the key attribute.
    pub fn key_binding(&self) -> &AttrBinding {
        self.attrs
            .get(&self.key_attr)
            .expect("validated at construction")
    }

    /// Assembles the identity query
    /// `instance_path[key_path = 'key_value']/attr_path` from the
    /// prototypes parsed at construction — no path text is re-parsed.
    /// `None` when `attr` is unbound or a prototype failed to parse
    /// (callers fall back to the error-reporting compile path).
    pub fn identity_query(&self, key_value: &str, attr: &str) -> Option<Query> {
        let (instance, key_rel) = self.identity_proto.as_ref()?;
        let attr_binding = self.attr(attr)?;
        let mut path = instance.clone();
        let predicate = Expr::eq(
            Expr::Path(key_rel.clone()),
            Expr::Literal(key_value.to_string()),
        );
        path.steps.last_mut()?.predicates.push(predicate);
        if !matches!(attr_binding, AttrBinding::SelfText) {
            let rel = self.attr_rels.get(attr)?.as_ref()?;
            path.steps.extend(rel.steps.iter().cloned());
        }
        Some(Query::from_expr(Expr::Path(path)))
    }

    /// Value nodes of a logical attribute for one instance.
    pub fn attr_nodes(&self, doc: &Document, instance: &NodeRef, name: &str) -> Vec<NodeRef> {
        match self.attr_query_or_compile(name) {
            Some(q) => q.select_from(doc, instance.clone()),
            None => Vec::new(),
        }
    }

    /// Value nodes of a logical attribute, evaluated through a shared
    /// [`Evaluator`].
    pub fn attr_nodes_with(
        &self,
        evaluator: &Evaluator<'_>,
        instance: &NodeRef,
        name: &str,
    ) -> Vec<NodeRef> {
        match self.attr_query_or_compile(name) {
            Some(q) => q.select_from_with(evaluator, instance.clone()),
            None => Vec::new(),
        }
    }

    /// First value of a logical attribute for one instance.
    pub fn attr_value(&self, doc: &Document, instance: &NodeRef, name: &str) -> Option<String> {
        self.attr_nodes(doc, instance, name)
            .first()
            .map(|n| n.string_value(doc))
    }

    /// All values of a logical attribute for one instance.
    pub fn attr_values(&self, doc: &Document, instance: &NodeRef, name: &str) -> Vec<String> {
        self.attr_nodes(doc, instance, name)
            .iter()
            .map(|n| n.string_value(doc))
            .collect()
    }

    /// The key value of one instance.
    pub fn key_of(&self, doc: &Document, instance: &NodeRef) -> Option<String> {
        self.attr_value(doc, instance, &self.key_attr)
    }

    /// The key value of one instance, evaluated through a shared
    /// [`Evaluator`].
    pub fn key_of_with(&self, evaluator: &Evaluator<'_>, instance: &NodeRef) -> Option<String> {
        self.attr_nodes_with(evaluator, instance, &self.key_attr)
            .first()
            .map(|n| n.string_value(evaluator.document()))
    }
}

/// A named set of entity bindings describing one physical schema.
#[derive(Debug, Clone)]
pub struct SchemaBinding {
    /// Binding name, e.g. `"db1"`.
    pub name: String,
    /// Entity name → binding.
    pub entities: BTreeMap<String, EntityBinding>,
}

impl SchemaBinding {
    /// Creates a binding set.
    pub fn new(name: &str, entities: Vec<EntityBinding>) -> Self {
        SchemaBinding {
            name: name.to_string(),
            entities: entities
                .into_iter()
                .map(|e| (e.entity.clone(), e))
                .collect(),
        }
    }

    /// Looks up an entity binding.
    pub fn entity(&self, name: &str) -> Option<&EntityBinding> {
        self.entities.get(name)
    }
}

/// The paper's db1.xml binding (Fig. 1a): books are records with
/// publisher attribute, title/author/editor/year children.
pub fn paper_db1_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db1",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("author", AttrBinding::ChildText("author".into())),
                ("editor", AttrBinding::ChildText("editor".into())),
                ("year", AttrBinding::ChildText("year".into())),
                ("publisher", AttrBinding::Attribute("publisher".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

/// The paper's db2.xml binding (Fig. 1b): books are leaves grouped under
/// publisher/author; publisher and author are reached via parent steps.
pub fn paper_db2_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db2",
        vec![EntityBinding::new(
            "book",
            "/db/publisher/author/book",
            "title",
            vec![
                ("title", AttrBinding::SelfText),
                ("author", AttrBinding::Path("../@name".into())),
                ("publisher", AttrBinding::Path("../../@name".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn db1_doc() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings in Database Systems</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <editor>Harrypotter</editor>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>Database Design</title>
                    <author>Berstein</author>
                    <editor>Gamer</editor>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap()
    }

    fn db2_doc() -> Document {
        parse(
            r#"<db>
                <publisher name="mkp">
                    <author name="Stonebraker">
                        <book>Readings in Database Systems</book>
                    </author>
                    <author name="Hellerstein">
                        <book>Readings in Database Systems</book>
                    </author>
                </publisher>
                <publisher name="acm">
                    <author name="Berstein">
                        <book>Database Design</book>
                    </author>
                </publisher>
            </db>"#,
        )
        .unwrap()
    }

    #[test]
    fn db1_binding_reads_attributes() {
        let doc = db1_doc();
        let binding = paper_db1_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(instances.len(), 2);
        assert_eq!(
            book.key_of(&doc, &instances[0]).unwrap(),
            "Readings in Database Systems"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "publisher").unwrap(),
            "mkp"
        );
        assert_eq!(
            book.attr_values(&doc, &instances[0], "author"),
            vec!["Stonebraker", "Hellerstein"]
        );
        assert_eq!(
            book.attr_value(&doc, &instances[1], "year").unwrap(),
            "1998"
        );
    }

    #[test]
    fn db2_binding_reads_same_logical_data() {
        let doc = db2_doc();
        let binding = paper_db2_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(instances.len(), 3); // one per (author, book) pair
        assert_eq!(
            book.key_of(&doc, &instances[0]).unwrap(),
            "Readings in Database Systems"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "publisher").unwrap(),
            "mkp"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[0], "author").unwrap(),
            "Stonebraker"
        );
        assert_eq!(
            book.attr_value(&doc, &instances[2], "publisher").unwrap(),
            "acm"
        );
    }

    #[test]
    fn missing_attribute_yields_none() {
        let doc = db1_doc();
        let binding = paper_db1_binding();
        let book = binding.entity("book").unwrap();
        let instances = book.instances(&doc);
        assert_eq!(book.attr_value(&doc, &instances[0], "missing"), None);
    }

    #[test]
    fn key_attr_must_be_bound() {
        let err = EntityBinding::new("x", "/a/x", "id", vec![]).unwrap_err();
        assert!(err.message.contains("key attribute"));
    }

    #[test]
    fn attrs_added_after_construction_still_locate_nodes() {
        let doc = db1_doc();
        let binding = paper_db1_binding();
        let mut book = binding.entity("book").unwrap().clone();
        // The compiled caches predate this attribute; the accessor must
        // fall back to compile-per-call, not silently locate nothing.
        book.attrs
            .insert("ed".into(), AttrBinding::ChildText("editor".into()));
        let instances = book.instances(&doc);
        assert_eq!(
            book.attr_value(&doc, &instances[0], "ed").unwrap(),
            "Harrypotter"
        );
        let ev = Evaluator::new(&doc);
        assert_eq!(book.attr_nodes_with(&ev, &instances[1], "ed").len(), 1);
    }

    #[test]
    fn attr_binding_path_text() {
        assert_eq!(AttrBinding::ChildText("t".into()).to_path_text(), "t");
        assert_eq!(AttrBinding::Attribute("a".into()).to_path_text(), "@a");
        assert_eq!(AttrBinding::SelfText.to_path_text(), ".");
        assert_eq!(
            AttrBinding::Path("../@name".into()).to_path_text(),
            "../@name"
        );
    }
}
