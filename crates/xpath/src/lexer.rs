//! Tokenizer for XPath query text.

use crate::error::XPathError;

/// One XPath token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `@`
    At,
    /// `*` — disambiguated into wildcard vs multiply by the parser.
    Star,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `::` axis separator
    DoubleColon,
    /// A name (element/attribute/function/axis/keyword — context decides).
    Name(String),
    /// A string literal (quotes removed).
    Literal(String),
    /// A numeric literal.
    Number(f64),
}

/// A token with its character offset in the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Character offset where the token starts.
    pub offset: usize,
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Tokenizes a full query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, XPathError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let offset = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Spanned {
                        token: Token::DoubleSlash,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Slash,
                        offset,
                    });
                    i += 1;
                }
            }
            '@' => {
                out.push(Spanned {
                    token: Token::At,
                    offset,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    offset,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    offset,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset,
                });
                i += 1;
            }
            '|' => {
                out.push(Spanned {
                    token: Token::Pipe,
                    offset,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    token: Token::Plus,
                    offset,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    offset,
                });
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    out.push(Spanned {
                        token: Token::DoubleColon,
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(XPathError::at("single ':' is not valid here", offset));
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    out.push(Spanned {
                        token: Token::DotDot,
                        offset,
                    });
                    i += 2;
                } else if matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) {
                    // .5 style number
                    let (n, next) = lex_number(&chars, i)?;
                    out.push(Spanned {
                        token: Token::Number(n),
                        offset,
                    });
                    i = next;
                } else {
                    out.push(Spanned {
                        token: Token::Dot,
                        offset,
                    });
                    i += 1;
                }
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset,
                });
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(XPathError::at("'!' must be followed by '='", offset));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Le,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut value = String::new();
                loop {
                    match chars.get(j) {
                        Some(&ch) if ch == quote => break,
                        Some(&ch) => {
                            value.push(ch);
                            j += 1;
                        }
                        None => return Err(XPathError::at("unterminated string literal", offset)),
                    }
                }
                out.push(Spanned {
                    token: Token::Literal(value),
                    offset,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (n, next) = lex_number(&chars, i)?;
                out.push(Spanned {
                    token: Token::Number(n),
                    offset,
                });
                i = next;
            }
            c if is_name_start(c) => {
                let mut j = i;
                while j < chars.len() && is_name_char(chars[j]) {
                    // A '.' is a name char in XML but in XPath `a.b` could
                    // be a name; names ending in '.' are not produced.
                    j += 1;
                }
                // Trim trailing dots back out (e.g. `book..` from `book..`).
                while j > i && chars[j - 1] == '.' {
                    j -= 1;
                }
                let name: String = chars[i..j].iter().collect();
                out.push(Spanned {
                    token: Token::Name(name),
                    offset,
                });
                i = j;
            }
            other => {
                return Err(XPathError::at(
                    format!("unexpected character {other:?}"),
                    offset,
                ))
            }
        }
    }
    Ok(out)
}

fn lex_number(chars: &[char], start: usize) -> Result<(f64, usize), XPathError> {
    let mut j = start;
    let mut saw_dot = false;
    while j < chars.len() {
        match chars[j] {
            d if d.is_ascii_digit() => j += 1,
            '.' if !saw_dot => {
                // `1..2` should lex as `1` `..` `2`? XPath has no ranges;
                // treat a second dot as the end of the number.
                if chars.get(j + 1) == Some(&'.') {
                    break;
                }
                saw_dot = true;
                j += 1;
            }
            _ => break,
        }
    }
    let text: String = chars[start..j].iter().collect();
    text.parse::<f64>()
        .map(|n| (n, j))
        .map_err(|_| XPathError::at(format!("invalid number {text:?}"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_paper_query() {
        assert_eq!(
            toks("db/book[title='DB Design']/author"),
            vec![
                Token::Name("db".into()),
                Token::Slash,
                Token::Name("book".into()),
                Token::LBracket,
                Token::Name("title".into()),
                Token::Eq,
                Token::Literal("DB Design".into()),
                Token::RBracket,
                Token::Slash,
                Token::Name("author".into()),
            ]
        );
    }

    #[test]
    fn lexes_attribute_and_double_slash() {
        assert_eq!(
            toks("//publisher/@name"),
            vec![
                Token::DoubleSlash,
                Token::Name("publisher".into()),
                Token::Slash,
                Token::At,
                Token::Name("name".into()),
            ]
        );
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            toks("a<=b!=c>=d<e>f"),
            vec![
                Token::Name("a".into()),
                Token::Le,
                Token::Name("b".into()),
                Token::Ne,
                Token::Name("c".into()),
                Token::Ge,
                Token::Name("d".into()),
                Token::Lt,
                Token::Name("e".into()),
                Token::Gt,
                Token::Name("f".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 .75"),
            vec![Token::Number(1.0), Token::Number(2.5), Token::Number(0.75)]
        );
    }

    #[test]
    fn lexes_dots() {
        assert_eq!(toks(". .."), vec![Token::Dot, Token::DotDot]);
    }

    #[test]
    fn lexes_double_quoted_literal() {
        assert_eq!(toks("\"it's\""), vec![Token::Literal("it's".into())]);
    }

    #[test]
    fn name_with_hyphen_and_digits() {
        assert_eq!(
            toks("starts-with(x1, 'a')"),
            vec![
                Token::Name("starts-with".into()),
                Token::LParen,
                Token::Name("x1".into()),
                Token::Comma,
                Token::Literal("a".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("a : b").is_err());
    }

    #[test]
    fn axis_separator() {
        assert_eq!(
            toks("self::node()"),
            vec![
                Token::Name("self".into()),
                Token::DoubleColon,
                Token::Name("node".into()),
                Token::LParen,
                Token::RParen,
            ]
        );
    }
}
