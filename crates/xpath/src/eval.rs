//! Expression and path evaluation over a [`Document`].
//!
//! Name tests are bound to the document's interned symbols at
//! evaluation time: one symbol-table lookup per step, then integer
//! compares per candidate. Descendant name steps (the `//name`
//! shorthand and explicit `descendant-or-self::` steps with a name
//! test) are answered from the document's cached
//! [`NameIndex`](wmx_xml::NameIndex) instead of re-traversing the tree,
//! and document-order sorting uses the same cached index — so repeated
//! query evaluation over an immutable document (the detection hot path)
//! pays one traversal total instead of one per query.

use crate::ast::{Axis, BinaryOp, Expr, NodeTest, PathExpr, Step};
use crate::error::XPathError;
use crate::value::{format_number, parse_number, NodeRef, Value};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use wmx_xml::{Document, NodeId, NodeKind, Sym};

/// A fast non-cryptographic hasher for the short name strings on the
/// symbol-memo path (FxHash-style byte folding). Collisions only cost a
/// probe; correctness is content-equality like any hash map.
#[derive(Default)]
struct NameHasher(u64);

impl Hasher for NameHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
}

type SymMemo = HashMap<Box<str>, Option<Sym>, BuildHasherDefault<NameHasher>>;

/// Evaluation engine bound to one document.
///
/// An evaluator may be reused across many queries against the same
/// document (the detection hot path does exactly that): it memoizes
/// name-test → [`Sym`] resolutions, so a predicate like `[title = 'X']`
/// evaluated once per candidate resolves `title` against the document's
/// symbol table once instead of once per candidate. The memo is sound
/// because the evaluator holds the document borrowed for its whole
/// lifetime (no mutation can change a binding) — the captured
/// [`Document::generation`] is asserted in debug builds as a guard.
pub struct Evaluator<'d> {
    doc: &'d Document,
    generation: u64,
    sym_memo: RefCell<SymMemo>,
    /// Recycled per-step candidate buffers: path evaluation allocates
    /// one `Vec<NodeRef>` per step, and the detection hot path runs
    /// thousands of short paths against one document. Buffers are
    /// checked out for the duration of a step (never across a borrow
    /// of the pool itself, so predicate recursion is safe) and
    /// returned cleared.
    scratch: RefCell<Vec<Vec<NodeRef>>>,
}

/// How many cleared buffers the scratch pool retains; deeper recursion
/// simply allocates fresh ones.
const SCRATCH_POOL_CAP: usize = 16;

/// Evaluation context: the context node plus its position/size within the
/// current candidate list (1-based, per XPath).
#[derive(Debug, Clone)]
pub struct Context {
    /// The context node.
    pub node: NodeRef,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
}

impl Context {
    /// A context for a lone node (position 1 of 1).
    pub fn solo(node: NodeRef) -> Self {
        Context {
            node,
            position: 1,
            size: 1,
        }
    }
}

impl<'d> Evaluator<'d> {
    /// Creates an evaluator for `doc`.
    pub fn new(doc: &'d Document) -> Self {
        Evaluator {
            doc,
            generation: doc.generation(),
            sym_memo: RefCell::new(SymMemo::default()),
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// Checks a cleared candidate buffer out of the scratch pool.
    fn take_buf(&self) -> Vec<NodeRef> {
        self.scratch.borrow_mut().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (cleared; dropped when full).
    fn put_buf(&self, mut buf: Vec<NodeRef>) {
        buf.clear();
        let mut pool = self.scratch.borrow_mut();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(buf);
        }
    }

    /// The document this evaluator is bound to.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Memoized name→symbol resolution (see the type docs).
    fn sym_of(&self, name: &str) -> Option<Sym> {
        debug_assert_eq!(
            self.doc.generation(),
            self.generation,
            "document symbol table changed under a live evaluator"
        );
        if let Some(&cached) = self.sym_memo.borrow().get(name) {
            return cached;
        }
        let sym = self.doc.lookup_sym(name);
        self.sym_memo.borrow_mut().insert(name.into(), sym);
        sym
    }

    fn order_of(&self, id: NodeId) -> usize {
        // The document caches its order index across evaluations; only
        // detached nodes (never produced by path steps) miss.
        self.doc.name_index().order_of(id).unwrap_or(usize::MAX)
    }

    fn sort_key(&self, node: &NodeRef) -> (usize, u8, usize) {
        match node {
            NodeRef::Node(id) => (self.order_of(*id), 0, 0),
            NodeRef::Attribute { element, name } => {
                let idx = self
                    .doc
                    .attributes(*element)
                    .iter()
                    .position(|a| self.doc.attr_name(a) == name)
                    .unwrap_or(usize::MAX);
                (self.order_of(*element), 1, idx)
            }
        }
    }

    /// Sorts `nodes` into document order and removes duplicates.
    pub fn document_order(&self, mut nodes: Vec<NodeRef>) -> Vec<NodeRef> {
        if nodes.len() <= 1 {
            return nodes; // already unique and ordered; skip the hashing
        }
        let mut seen = HashSet::with_capacity(nodes.len());
        nodes.retain(|n| seen.insert(n.clone()));
        nodes.sort_by_key(|n| self.sort_key(n));
        nodes
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    /// Evaluates a location path from `start`.
    pub fn eval_path(&self, path: &PathExpr, start: &NodeRef) -> Result<Vec<NodeRef>, XPathError> {
        let mut current = self.take_buf();
        current.push(if path.absolute {
            NodeRef::Node(self.doc.document_node())
        } else {
            start.clone()
        });
        self.eval_steps(&path.steps, current)
    }

    /// Runs the per-step path loop over `steps` starting from the
    /// candidate set `current` — exactly the body of [`eval_path`]
    /// (including `//name` fusion and the single-context fast path).
    /// Exposed so batch detection can resume a decomposed path after a
    /// shared predicate scan.
    ///
    /// [`eval_path`]: Evaluator::eval_path
    pub fn eval_steps(
        &self,
        steps: &[Step],
        mut current: Vec<NodeRef>,
    ) -> Result<Vec<NodeRef>, XPathError> {
        let mut i = 0;
        while i < steps.len() {
            let step = &steps[i];
            // Fused `//name`: a bare descendant-or-self::node() step
            // followed by a predicate-free child::name selects exactly
            // the proper descendants of the context named `name` —
            // answered from the document's name index instead of
            // materializing every node of the subtree. Positional
            // predicates are per-parent in XPath, so a predicated child
            // step takes the unfused path.
            if let Some(named) = steps.get(i + 1) {
                if step.axis == Axis::DescendantOrSelf
                    && step.test == NodeTest::AnyNode
                    && step.predicates.is_empty()
                    && named.axis == Axis::Child
                    && named.predicates.is_empty()
                {
                    if let NodeTest::Name(n) = &named.test {
                        let single_ctx = current.len() == 1;
                        let mut next = self.take_buf();
                        if let Some(sym) = self.sym_of(n) {
                            for ctx in &current {
                                self.descendants_named_into(ctx, sym, &mut next);
                            }
                        }
                        // One context (the common absolute `//name`)
                        // yields an already unique, document-ordered
                        // list straight from the index — skip the
                        // dedup/sort pass.
                        if !single_ctx {
                            next = self.document_order(next);
                        }
                        self.put_buf(std::mem::replace(&mut current, next));
                        if current.is_empty() {
                            break;
                        }
                        i += 2;
                        continue;
                    }
                }
            }
            let single_ctx = current.len() == 1;
            let mut next = self.take_buf();
            for ctx in &current {
                let start_len = next.len();
                self.axis_candidates_into(ctx, step, &mut next);
                self.apply_predicates_in_place(&mut next, start_len, &step.predicates)?;
            }
            // Every axis yields unique candidates in document order for
            // one context node, and predicates only filter — so a
            // single-context step needs no dedup/sort pass. This is the
            // common shape of identity queries (`/db/book[pred]/year`).
            if !single_ctx {
                next = self.document_order(next);
            }
            self.put_buf(std::mem::replace(&mut current, next));
            if current.is_empty() {
                break;
            }
            i += 1;
        }
        Ok(current)
    }

    /// Candidates of one step from one context: axis candidates run
    /// through the step's predicates — the per-context body of the path
    /// loop. Exposed for batch detection's shared candidate scan.
    pub fn step_candidates(&self, ctx: &NodeRef, step: &Step) -> Result<Vec<NodeRef>, XPathError> {
        let mut out = Vec::new();
        self.axis_candidates_into(ctx, step, &mut out);
        self.apply_predicates_in_place(&mut out, 0, &step.predicates)?;
        Ok(out)
    }

    /// Proper descendants of `ctx` that are elements named `sym`, in
    /// document order — the expansion of `ctx//name`, appended to
    /// `out`. From the document node the index list is copied whole;
    /// from any other attached node the list is filtered by an ancestor
    /// walk (index lists are per-name, so this touches only same-named
    /// elements, not the whole subtree). Detached contexts are absent
    /// from the index and fall back to a subtree traversal.
    fn descendants_named_into(&self, ctx: &NodeRef, sym: Sym, out: &mut Vec<NodeRef>) {
        let NodeRef::Node(ctx_id) = ctx else {
            return; // attributes have no element descendants
        };
        if *ctx_id == self.doc.document_node() {
            let named = self.doc.name_index().elements_named(sym);
            out.extend(named.iter().copied().map(NodeRef::Node));
            return;
        }
        if !self.doc.is_attached(*ctx_id) {
            out.extend(
                self.doc
                    .descendants(*ctx_id)
                    .filter(|&n| n != *ctx_id && self.doc.name_sym(n) == Some(sym))
                    .map(NodeRef::Node),
            );
            return;
        }
        out.extend(
            self.doc
                .name_index()
                .elements_named(sym)
                .iter()
                .copied()
                .filter(|&n| self.is_proper_ancestor(*ctx_id, n))
                .map(NodeRef::Node),
        );
    }

    /// Whether `ancestor` lies strictly above `node`.
    fn is_proper_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cursor = self.doc.parent(node);
        while let Some(p) = cursor {
            if p == ancestor {
                return true;
            }
            cursor = self.doc.parent(p);
        }
        false
    }

    fn axis_candidates_into(&self, ctx: &NodeRef, step: &Step, out: &mut Vec<NodeRef>) {
        match step.axis {
            Axis::Child => match ctx {
                NodeRef::Node(id) => match &step.test {
                    // Name tests compare interned symbols: one memoized
                    // table lookup, then integer compares per child.
                    NodeTest::Name(n) => {
                        if let Some(sym) = self.sym_of(n) {
                            out.extend(
                                self.doc
                                    .children(*id)
                                    .iter()
                                    .copied()
                                    .filter(|&c| self.doc.name_sym(c) == Some(sym))
                                    .map(NodeRef::Node),
                            );
                        }
                    }
                    test => out.extend(
                        self.doc
                            .children(*id)
                            .iter()
                            .copied()
                            .filter(|&c| self.node_test_matches(c, test))
                            .map(NodeRef::Node),
                    ),
                },
                NodeRef::Attribute { .. } => {}
            },
            Axis::DescendantOrSelf => match ctx {
                NodeRef::Node(id) => match &step.test {
                    // An explicit descendant name step: answer from the
                    // index (self is included iff it carries the name,
                    // which descendants_named_into's ancestor filter
                    // misses, so check it separately).
                    NodeTest::Name(n) => {
                        if let Some(sym) = self.sym_of(n) {
                            if self.doc.name_sym(*id) == Some(sym) {
                                out.push(NodeRef::Node(*id));
                            }
                            self.descendants_named_into(ctx, sym, out);
                        }
                    }
                    test => out.extend(
                        self.doc
                            .descendants(*id)
                            .filter(|&n| self.node_test_matches(n, test))
                            .map(NodeRef::Node),
                    ),
                },
                NodeRef::Attribute { .. } => {}
            },
            Axis::SelfAxis => match ctx {
                NodeRef::Node(id) if self.node_test_matches(*id, &step.test) => {
                    out.push(ctx.clone());
                }
                NodeRef::Attribute { .. } if step.test == NodeTest::AnyNode => {
                    out.push(ctx.clone());
                }
                _ => {}
            },
            Axis::Parent => {
                let parent = match ctx {
                    NodeRef::Node(id) => self.doc.parent(*id),
                    NodeRef::Attribute { element, .. } => Some(*element),
                };
                if let Some(p) = parent.filter(|&p| self.node_test_matches(p, &step.test)) {
                    out.push(NodeRef::Node(p));
                }
            }
            Axis::Attribute => match ctx {
                NodeRef::Node(id) if self.doc.is_element(*id) => {
                    let name_sym = match &step.test {
                        NodeTest::Name(n) => match self.sym_of(n) {
                            Some(sym) => Some(sym),
                            None => return,
                        },
                        NodeTest::Wildcard | NodeTest::AnyNode => None,
                        NodeTest::Text => return,
                    };
                    out.extend(
                        self.doc
                            .attributes(*id)
                            .iter()
                            .filter(|a| name_sym.is_none_or(|sym| a.name == sym))
                            .map(|a| NodeRef::Attribute {
                                element: *id,
                                name: self.doc.attr_name(a).to_string(),
                            }),
                    );
                }
                _ => {}
            },
        }
    }

    fn node_test_matches(&self, node: NodeId, test: &NodeTest) -> bool {
        match test {
            NodeTest::Name(n) => match self.sym_of(n) {
                Some(sym) => self.doc.name_sym(node) == Some(sym),
                None => false,
            },
            NodeTest::Wildcard => self.doc.is_element(node),
            NodeTest::Text => matches!(self.doc.kind(node), NodeKind::Text(_) | NodeKind::CData(_)),
            NodeTest::AnyNode => true,
        }
    }

    /// Filters `buf[start..]` in place through `predicates`, preserving
    /// order; context position/size are relative to that range (the
    /// candidates of one context node), matching per-context predicate
    /// semantics.
    fn apply_predicates_in_place(
        &self,
        buf: &mut Vec<NodeRef>,
        start: usize,
        predicates: &[Expr],
    ) -> Result<(), XPathError> {
        for predicate in predicates {
            let size = buf.len() - start;
            let mut write = start;
            for i in 0..size {
                let idx = start + i;
                let ctx = Context {
                    node: buf[idx].clone(),
                    position: i + 1,
                    size,
                };
                let value = self.eval_expr(predicate, &ctx)?;
                let keep = match value {
                    // A bare number predicate means position() = n.
                    Value::Number(n) => (ctx.position as f64) == n,
                    other => other.to_boolean(),
                };
                if keep {
                    buf.swap(write, idx);
                    write += 1;
                }
            }
            buf.truncate(write);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Evaluates `expr` in context `ctx`.
    pub fn eval_expr(&self, expr: &Expr, ctx: &Context) -> Result<Value, XPathError> {
        match expr {
            Expr::Path(p) => Ok(Value::Nodes(self.eval_path(p, &ctx.node)?)),
            Expr::Literal(s) => Ok(Value::Text(s.clone())),
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Negate(inner) => {
                let v = self.eval_expr(inner, ctx)?;
                Ok(Value::Number(-v.to_number(self.doc)))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, ctx),
            Expr::Call { name, args } => self.eval_call(name, args, ctx),
        }
    }

    fn eval_binary(
        &self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        ctx: &Context,
    ) -> Result<Value, XPathError> {
        match op {
            BinaryOp::Or => {
                if self.eval_expr(lhs, ctx)?.to_boolean() {
                    return Ok(Value::Boolean(true));
                }
                Ok(Value::Boolean(self.eval_expr(rhs, ctx)?.to_boolean()))
            }
            BinaryOp::And => {
                if !self.eval_expr(lhs, ctx)?.to_boolean() {
                    return Ok(Value::Boolean(false));
                }
                Ok(Value::Boolean(self.eval_expr(rhs, ctx)?.to_boolean()))
            }
            BinaryOp::Union => {
                let l = self.eval_expr(lhs, ctx)?;
                let r = self.eval_expr(rhs, ctx)?;
                match (l, r) {
                    (Value::Nodes(mut a), Value::Nodes(b)) => {
                        a.extend(b);
                        Ok(Value::Nodes(self.document_order(a)))
                    }
                    _ => Err(XPathError::new("'|' requires node-set operands")),
                }
            }
            BinaryOp::Eq | BinaryOp::Ne => {
                let l = self.eval_expr(lhs, ctx)?;
                let r = self.eval_expr(rhs, ctx)?;
                Ok(Value::Boolean(self.compare_eq(&l, &r, op == BinaryOp::Ne)))
            }
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                let l = self.eval_expr(lhs, ctx)?;
                let r = self.eval_expr(rhs, ctx)?;
                Ok(Value::Boolean(self.compare_rel(&l, &r, op)))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                let l = self.eval_expr(lhs, ctx)?.to_number(self.doc);
                let r = self.eval_expr(rhs, ctx)?.to_number(self.doc);
                Ok(Value::Number(match op {
                    BinaryOp::Add => l + r,
                    BinaryOp::Sub => l - r,
                    BinaryOp::Mul => l * r,
                    BinaryOp::Div => l / r,
                    BinaryOp::Mod => l % r,
                    _ => unreachable!("arithmetic op"),
                }))
            }
        }
    }

    /// XPath `=`/`!=` semantics, including existential node-set comparison.
    fn compare_eq(&self, l: &Value, r: &Value, negate: bool) -> bool {
        match (l, r) {
            (Value::Nodes(a), Value::Nodes(b)) => {
                let bs: HashSet<String> = b.iter().map(|n| n.string_value(self.doc)).collect();
                a.iter().any(|n| {
                    let sv = n.string_value(self.doc);
                    if negate {
                        bs.iter().any(|other| *other != sv)
                    } else {
                        bs.contains(&sv)
                    }
                })
            }
            (Value::Nodes(ns), Value::Text(s)) | (Value::Text(s), Value::Nodes(ns)) => {
                ns.iter().any(|n| n.string_value_eq(self.doc, s) != negate)
            }
            (Value::Nodes(ns), Value::Number(x)) | (Value::Number(x), Value::Nodes(ns)) => ns
                .iter()
                .any(|n| (parse_number(&n.string_value(self.doc)) == *x) != negate),
            (Value::Nodes(ns), Value::Boolean(b)) | (Value::Boolean(b), Value::Nodes(ns)) => {
                (ns.is_empty() != *b) != negate
            }
            (Value::Boolean(a), b) | (b, Value::Boolean(a)) => (*a == b.to_boolean()) != negate,
            (Value::Number(a), b) | (b, Value::Number(a)) => {
                (*a == b.to_number(self.doc)) != negate
            }
            (Value::Text(a), Value::Text(b)) => (a == b) != negate,
        }
    }

    /// XPath `<`/`<=`/`>`/`>=` semantics (numeric, existential for sets).
    fn compare_rel(&self, l: &Value, r: &Value, op: BinaryOp) -> bool {
        let cmp = |a: f64, b: f64| match op {
            BinaryOp::Lt => a < b,
            BinaryOp::Le => a <= b,
            BinaryOp::Gt => a > b,
            BinaryOp::Ge => a >= b,
            _ => unreachable!("relational op"),
        };
        match (l, r) {
            (Value::Nodes(a), Value::Nodes(b)) => a.iter().any(|x| {
                let xv = parse_number(&x.string_value(self.doc));
                b.iter()
                    .any(|y| cmp(xv, parse_number(&y.string_value(self.doc))))
            }),
            (Value::Nodes(ns), other) => {
                let rv = other.to_number(self.doc);
                ns.iter()
                    .any(|n| cmp(parse_number(&n.string_value(self.doc)), rv))
            }
            (other, Value::Nodes(ns)) => {
                let lv = other.to_number(self.doc);
                ns.iter()
                    .any(|n| cmp(lv, parse_number(&n.string_value(self.doc))))
            }
            (a, b) => cmp(a.to_number(self.doc), b.to_number(self.doc)),
        }
    }

    // ------------------------------------------------------------------
    // Function library
    // ------------------------------------------------------------------

    fn eval_call(&self, name: &str, args: &[Expr], ctx: &Context) -> Result<Value, XPathError> {
        let arity = |min: usize, max: usize| -> Result<(), XPathError> {
            if args.len() < min || args.len() > max {
                Err(XPathError::new(format!(
                    "{name}() expects {min}..{max} arguments, got {}",
                    args.len()
                )))
            } else {
                Ok(())
            }
        };
        // Evaluate an argument, or default to the context node.
        let arg_or_ctx = |i: usize| -> Result<Value, XPathError> {
            match args.get(i) {
                Some(e) => self.eval_expr(e, ctx),
                None => Ok(Value::Nodes(vec![ctx.node.clone()])),
            }
        };
        match name {
            "position" => {
                arity(0, 0)?;
                Ok(Value::Number(ctx.position as f64))
            }
            "last" => {
                arity(0, 0)?;
                Ok(Value::Number(ctx.size as f64))
            }
            "count" => {
                arity(1, 1)?;
                match self.eval_expr(&args[0], ctx)? {
                    Value::Nodes(ns) => Ok(Value::Number(ns.len() as f64)),
                    _ => Err(XPathError::new("count() requires a node-set")),
                }
            }
            "contains" => {
                arity(2, 2)?;
                let hay = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let needle = self.eval_expr(&args[1], ctx)?.to_text(self.doc);
                Ok(Value::Boolean(hay.contains(&needle)))
            }
            "starts-with" => {
                arity(2, 2)?;
                let hay = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let prefix = self.eval_expr(&args[1], ctx)?.to_text(self.doc);
                Ok(Value::Boolean(hay.starts_with(&prefix)))
            }
            "not" => {
                arity(1, 1)?;
                Ok(Value::Boolean(!self.eval_expr(&args[0], ctx)?.to_boolean()))
            }
            "true" => {
                arity(0, 0)?;
                Ok(Value::Boolean(true))
            }
            "false" => {
                arity(0, 0)?;
                Ok(Value::Boolean(false))
            }
            "boolean" => {
                arity(1, 1)?;
                Ok(Value::Boolean(self.eval_expr(&args[0], ctx)?.to_boolean()))
            }
            "name" => {
                arity(0, 1)?;
                let v = arg_or_ctx(0)?;
                match v {
                    Value::Nodes(ns) => Ok(Value::Text(
                        ns.first()
                            .map(|n| n.node_name(self.doc))
                            .unwrap_or_default(),
                    )),
                    _ => Err(XPathError::new("name() requires a node-set")),
                }
            }
            "string" => {
                arity(0, 1)?;
                Ok(Value::Text(arg_or_ctx(0)?.to_text(self.doc)))
            }
            "number" => {
                arity(0, 1)?;
                Ok(Value::Number(arg_or_ctx(0)?.to_number(self.doc)))
            }
            "string-length" => {
                arity(0, 1)?;
                let s = arg_or_ctx(0)?.to_text(self.doc);
                Ok(Value::Number(s.chars().count() as f64))
            }
            "normalize-space" => {
                arity(0, 1)?;
                let s = arg_or_ctx(0)?.to_text(self.doc);
                Ok(Value::Text(
                    s.split_whitespace().collect::<Vec<_>>().join(" "),
                ))
            }
            "concat" => {
                if args.len() < 2 {
                    return Err(XPathError::new("concat() expects at least 2 arguments"));
                }
                let mut out = String::new();
                for a in args {
                    out.push_str(&self.eval_expr(a, ctx)?.to_text(self.doc));
                }
                Ok(Value::Text(out))
            }
            "substring" => {
                arity(2, 3)?;
                let s = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let start = self.eval_expr(&args[1], ctx)?.to_number(self.doc);
                let len = match args.get(2) {
                    Some(e) => self.eval_expr(e, ctx)?.to_number(self.doc),
                    None => f64::INFINITY,
                };
                Ok(Value::Text(xpath_substring(&s, start, len)))
            }
            "substring-before" => {
                arity(2, 2)?;
                let s = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let pat = self.eval_expr(&args[1], ctx)?.to_text(self.doc);
                Ok(Value::Text(
                    s.find(&pat).map(|i| s[..i].to_string()).unwrap_or_default(),
                ))
            }
            "substring-after" => {
                arity(2, 2)?;
                let s = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let pat = self.eval_expr(&args[1], ctx)?.to_text(self.doc);
                Ok(Value::Text(
                    s.find(&pat)
                        .map(|i| s[i + pat.len()..].to_string())
                        .unwrap_or_default(),
                ))
            }
            "translate" => {
                arity(3, 3)?;
                let s = self.eval_expr(&args[0], ctx)?.to_text(self.doc);
                let from: Vec<char> = self
                    .eval_expr(&args[1], ctx)?
                    .to_text(self.doc)
                    .chars()
                    .collect();
                let to: Vec<char> = self
                    .eval_expr(&args[2], ctx)?
                    .to_text(self.doc)
                    .chars()
                    .collect();
                let translated: String = s
                    .chars()
                    .filter_map(|c| match from.iter().position(|&f| f == c) {
                        None => Some(c),
                        Some(i) => to.get(i).copied(),
                    })
                    .collect();
                Ok(Value::Text(translated))
            }
            "sum" => {
                arity(1, 1)?;
                match self.eval_expr(&args[0], ctx)? {
                    Value::Nodes(ns) => Ok(Value::Number(
                        ns.iter()
                            .map(|n| parse_number(&n.string_value(self.doc)))
                            .sum(),
                    )),
                    _ => Err(XPathError::new("sum() requires a node-set")),
                }
            }
            "floor" => {
                arity(1, 1)?;
                Ok(Value::Number(
                    self.eval_expr(&args[0], ctx)?.to_number(self.doc).floor(),
                ))
            }
            "ceiling" => {
                arity(1, 1)?;
                Ok(Value::Number(
                    self.eval_expr(&args[0], ctx)?.to_number(self.doc).ceil(),
                ))
            }
            "round" => {
                arity(1, 1)?;
                Ok(Value::Number(
                    self.eval_expr(&args[0], ctx)?.to_number(self.doc).round(),
                ))
            }
            other => Err(XPathError::new(format!("unknown function {other}()"))),
        }
    }
}

/// XPath 1.0 `substring()` semantics: 1-based, rounded positions, NaN
/// and infinity handled per the spec.
fn xpath_substring(s: &str, start: f64, len: f64) -> String {
    if start.is_nan() || len.is_nan() {
        return String::new();
    }
    let chars: Vec<char> = s.chars().collect();
    // Positions p satisfy round(start) <= p < round(start) + round(len),
    // with p 1-based.
    let begin = start.round();
    let end = if len.is_infinite() {
        f64::INFINITY
    } else {
        begin + len.round()
    };
    chars
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let p = (*i + 1) as f64;
            p >= begin && p < end
        })
        .map(|(_, c)| *c)
        .collect()
}

/// Formats a [`Value`] for display in experiment output.
pub fn value_to_display(value: &Value, doc: &Document) -> String {
    match value {
        Value::Nodes(ns) => format!(
            "node-set[{}]{{{}}}",
            ns.len(),
            ns.iter()
                .take(4)
                .map(|n| n.string_value(doc))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Value::Text(s) => s.clone(),
        Value::Number(n) => format_number(*n),
        Value::Boolean(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    #[test]
    fn document_order_sorts_attributes_after_their_element() {
        let doc = parse(r#"<a x="1" y="2"><b z="3"/></a>"#).unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.first_child_element(root, "b").unwrap();
        let ev = Evaluator::new(&doc);
        let shuffled = vec![
            NodeRef::Attribute {
                element: b,
                name: "z".into(),
            },
            NodeRef::Node(b),
            NodeRef::Attribute {
                element: root,
                name: "y".into(),
            },
            NodeRef::Node(root),
            NodeRef::Attribute {
                element: root,
                name: "x".into(),
            },
        ];
        let ordered = ev.document_order(shuffled);
        assert_eq!(
            ordered,
            vec![
                NodeRef::Node(root),
                NodeRef::Attribute {
                    element: root,
                    name: "x".into()
                },
                NodeRef::Attribute {
                    element: root,
                    name: "y".into()
                },
                NodeRef::Node(b),
                NodeRef::Attribute {
                    element: b,
                    name: "z".into()
                },
            ]
        );
    }

    #[test]
    fn document_order_deduplicates() {
        let doc = parse("<a><b/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let ev = Evaluator::new(&doc);
        let dupes = vec![
            NodeRef::Node(root),
            NodeRef::Node(root),
            NodeRef::Node(root),
        ];
        assert_eq!(ev.document_order(dupes).len(), 1);
    }

    #[test]
    fn xpath_substring_spec_edges() {
        assert_eq!(xpath_substring("12345", 1.5, 2.6), "234");
        assert_eq!(xpath_substring("12345", 0.0, 3.0), "12");
        assert_eq!(xpath_substring("12345", f64::NAN, 3.0), "");
        assert_eq!(xpath_substring("12345", 1.0, f64::NAN), "");
        assert_eq!(xpath_substring("12345", -42.0, f64::INFINITY), "12345");
        assert_eq!(xpath_substring("", 1.0, 5.0), "");
        // Multi-byte characters count as one position each.
        assert_eq!(xpath_substring("héllo", 2.0, 2.0), "él");
    }

    #[test]
    fn context_solo_has_position_one_of_one() {
        let doc = parse("<a/>").unwrap();
        let ctx = Context::solo(NodeRef::Node(doc.document_node()));
        assert_eq!(ctx.position, 1);
        assert_eq!(ctx.size, 1);
    }
}
