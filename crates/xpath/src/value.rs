//! The XPath 1.0 value model: node-sets, strings, numbers, booleans.

use wmx_xml::{Document, NodeId};

/// A reference to a node in the XPath data model. Attributes are not
/// arena nodes in `wmx-xml`, so they are addressed as (element, name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// An element, text, CDATA, comment, PI, or the document node.
    Node(NodeId),
    /// An attribute of an element.
    Attribute {
        /// The owning element.
        element: NodeId,
        /// The attribute name.
        name: String,
    },
}

impl NodeRef {
    /// The XPath string-value of this node.
    pub fn string_value(&self, doc: &Document) -> String {
        match self {
            NodeRef::Node(id) => doc.text_content(*id),
            NodeRef::Attribute { element, name } => doc
                .attribute(*element, name)
                .map(str::to_string)
                .unwrap_or_default(),
        }
    }

    /// Whether this node's XPath string-value equals `expected`,
    /// without materializing the string-value. Equivalent to
    /// `self.string_value(doc) == expected` — the text pieces of the
    /// subtree are matched prefix-wise against `expected` instead of
    /// being concatenated. This is the predicate-comparison hot path:
    /// identity queries evaluate `[key = 'value']` once per candidate.
    pub fn string_value_eq(&self, doc: &Document, expected: &str) -> bool {
        match self {
            NodeRef::Node(id) => {
                let mut rest = expected;
                for n in doc.descendants(*id) {
                    if let Some(t) = doc.text(n) {
                        match rest.strip_prefix(t) {
                            Some(r) => rest = r,
                            None => return false,
                        }
                    }
                }
                rest.is_empty()
            }
            NodeRef::Attribute { element, name } => {
                doc.attribute(*element, name).unwrap_or("") == expected
            }
        }
    }

    /// The element id, when this reference is an element node.
    pub fn as_element(&self, doc: &Document) -> Option<NodeId> {
        match self {
            NodeRef::Node(id) if doc.is_element(*id) => Some(*id),
            _ => None,
        }
    }

    /// The underlying node id (the owning element for attributes).
    pub fn anchor_node(&self) -> NodeId {
        match self {
            NodeRef::Node(id) => *id,
            NodeRef::Attribute { element, .. } => *element,
        }
    }

    /// The node's name: element name, attribute name, or empty.
    pub fn node_name(&self, doc: &Document) -> String {
        match self {
            NodeRef::Node(id) => doc.name(*id).unwrap_or_default().to_string(),
            NodeRef::Attribute { name, .. } => name.clone(),
        }
    }
}

/// An XPath evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of nodes in document order.
    Nodes(Vec<NodeRef>),
    /// A string.
    Text(String),
    /// A number (IEEE double, NaN allowed per XPath).
    Number(f64),
    /// A boolean.
    Boolean(bool),
}

impl Value {
    /// XPath `boolean()` conversion.
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Text(s) => !s.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Boolean(b) => *b,
        }
    }

    /// XPath `string()` conversion (first node's string-value for sets).
    pub fn to_text(&self, doc: &Document) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map(|n| n.string_value(doc)).unwrap_or_default(),
            Value::Text(s) => s.clone(),
            Value::Number(n) => format_number(*n),
            Value::Boolean(b) => b.to_string(),
        }
    }

    /// XPath `number()` conversion.
    pub fn to_number(&self, doc: &Document) -> f64 {
        match self {
            Value::Nodes(_) | Value::Text(_) => parse_number(&self.to_text(doc)),
            Value::Number(n) => *n,
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The node-set, or an empty slice view for non-node values.
    pub fn as_nodes(&self) -> &[NodeRef] {
        match self {
            Value::Nodes(ns) => ns,
            _ => &[],
        }
    }

    /// Consumes the value, returning its node-set (empty for non-nodes).
    pub fn into_nodes(self) -> Vec<NodeRef> {
        match self {
            Value::Nodes(ns) => ns,
            _ => Vec::new(),
        }
    }
}

/// XPath number→string rules (integers print without a decimal point).
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        return "NaN".to_string();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath string→number rules: trim whitespace, parse, else NaN.
pub fn parse_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    #[test]
    fn boolean_conversions() {
        assert!(!Value::Nodes(vec![]).to_boolean());
        assert!(Value::Text("x".into()).to_boolean());
        assert!(!Value::Text(String::new()).to_boolean());
        assert!(Value::Number(2.0).to_boolean());
        assert!(!Value::Number(0.0).to_boolean());
        assert!(!Value::Number(f64::NAN).to_boolean());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-2.0), "-2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }

    #[test]
    fn number_parsing() {
        assert_eq!(parse_number(" 42 "), 42.0);
        assert_eq!(parse_number("-1.5"), -1.5);
        assert!(parse_number("abc").is_nan());
        assert!(parse_number("").is_nan());
    }

    #[test]
    fn string_value_of_nodes() {
        let doc = parse("<a x=\"1\"><b>hi</b><b>there</b></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(NodeRef::Node(root).string_value(&doc), "hithere");
        let attr = NodeRef::Attribute {
            element: root,
            name: "x".into(),
        };
        assert_eq!(attr.string_value(&doc), "1");
        assert_eq!(attr.node_name(&doc), "x");
    }

    #[test]
    fn value_to_text_uses_first_node() {
        let doc = parse("<a><b>first</b><b>second</b></a>").unwrap();
        let root = doc.root_element().unwrap();
        let bs: Vec<NodeRef> = doc.child_elements(root).map(NodeRef::Node).collect();
        assert_eq!(Value::Nodes(bs).to_text(&doc), "first");
    }
}
