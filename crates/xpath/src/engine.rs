//! Compiled queries: the public entry point of the engine.

use crate::ast::Expr;
use crate::error::XPathError;
use crate::eval::{Context, Evaluator};
use crate::parser::parse_expr;
use crate::value::{NodeRef, Value};
use std::fmt;
use wmx_xml::Document;

/// A compiled, reusable XPath query.
///
/// Queries render back to their canonical text via [`fmt::Display`],
/// which is the form WmXML persists between embedding and detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    expr: Expr,
}

impl Query {
    /// Compiles query text.
    pub fn compile(text: &str) -> Result<Self, XPathError> {
        Ok(Query {
            expr: parse_expr(text)?,
        })
    }

    /// Wraps an already-built AST (used by the identifier generator and
    /// the query rewriter, which construct queries programmatically).
    pub fn from_expr(expr: Expr) -> Self {
        Query { expr }
    }

    /// The underlying AST.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluates the query from the document root context.
    pub fn evaluate(&self, doc: &Document) -> Result<Value, XPathError> {
        self.evaluate_with(&Evaluator::new(doc))
    }

    /// Evaluates from the document root through an existing evaluator.
    ///
    /// Reusing one [`Evaluator`] across many queries against the same
    /// document (the detection loop) shares its memoized name→symbol
    /// resolutions instead of rebuilding them per query.
    pub fn evaluate_with(&self, evaluator: &Evaluator<'_>) -> Result<Value, XPathError> {
        let ctx = Context::solo(NodeRef::Node(evaluator.document().document_node()));
        evaluator.eval_expr(&self.expr, &ctx)
    }

    /// Evaluates from an explicit context node.
    pub fn evaluate_from(&self, doc: &Document, context: NodeRef) -> Result<Value, XPathError> {
        let evaluator = Evaluator::new(doc);
        evaluator.eval_expr(&self.expr, &Context::solo(context))
    }

    /// Evaluates from an explicit context node through an existing
    /// evaluator.
    pub fn evaluate_from_with(
        &self,
        evaluator: &Evaluator<'_>,
        context: NodeRef,
    ) -> Result<Value, XPathError> {
        evaluator.eval_expr(&self.expr, &Context::solo(context))
    }

    /// Evaluates and returns the node-set result (empty for non-node
    /// values or errors). The common retrieval call in WmXML.
    pub fn select(&self, doc: &Document) -> Vec<NodeRef> {
        self.evaluate(doc)
            .map(Value::into_nodes)
            .unwrap_or_default()
    }

    /// Evaluates through an existing evaluator, returning the node-set.
    pub fn select_with(&self, evaluator: &Evaluator<'_>) -> Vec<NodeRef> {
        self.evaluate_with(evaluator)
            .map(Value::into_nodes)
            .unwrap_or_default()
    }

    /// Evaluates from a context node, returning the node-set.
    pub fn select_from(&self, doc: &Document, context: NodeRef) -> Vec<NodeRef> {
        self.evaluate_from(doc, context)
            .map(Value::into_nodes)
            .unwrap_or_default()
    }

    /// Evaluates from a context node through an existing evaluator,
    /// returning the node-set.
    pub fn select_from_with(&self, evaluator: &Evaluator<'_>, context: NodeRef) -> Vec<NodeRef> {
        self.evaluate_from_with(evaluator, context)
            .map(Value::into_nodes)
            .unwrap_or_default()
    }

    /// String-value of the first result node, if any.
    pub fn select_string(&self, doc: &Document) -> Option<String> {
        self.select(doc).first().map(|n| n.string_value(doc))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)
    }
}

impl std::str::FromStr for Query {
    type Err = XPathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Query::compile(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    /// The paper's db1.xml (Fig. 1a), verbatim structure.
    fn db1() -> Document {
        parse(
            r#"<db>
                <book publisher="mkp">
                    <title>Readings in Database Systems</title>
                    <author>Stonebraker</author>
                    <author>Hellerstein</author>
                    <editor>Harrypotter</editor>
                    <year>1998</year>
                </book>
                <book publisher="acm">
                    <title>Database Design</title>
                    <writer>Berstein</writer>
                    <writer>Newcomer</writer>
                    <editor>Gamer</editor>
                    <year>1998</year>
                </book>
            </db>"#,
        )
        .unwrap()
    }

    /// The paper's db2.xml (Fig. 1b), reorganized schema.
    fn db2() -> Document {
        parse(
            r#"<db>
                <publisher name="mkp">
                    <author name="Stonebraker">
                        <book>Readings in Database Systems</book>
                        <book>XML Query Processing</book>
                    </author>
                    <author name="Hellerstein">
                        <book>Readings in Database Systems</book>
                        <book>Relational Data Integration</book>
                    </author>
                </publisher>
                <publisher name="acm">
                    <author name="Berstein">
                        <book>Database Design</book>
                    </author>
                </publisher>
            </db>"#,
        )
        .unwrap()
    }

    fn strings(q: &str, doc: &Document) -> Vec<String> {
        Query::compile(q)
            .unwrap()
            .select(doc)
            .iter()
            .map(|n| n.string_value(doc))
            .collect()
    }

    #[test]
    fn paper_usability_query_on_db1() {
        // §2.1: "db/book[title='DB Design']/author" (full title here).
        let authors = strings("db/book[title='Database Design']/writer", &db1());
        assert_eq!(authors, vec!["Berstein", "Newcomer"]);
    }

    #[test]
    fn paper_rewritten_query_on_db2() {
        // §2.2: the rewritten form against the reorganized schema.
        let authors = strings("db/publisher/author[book='Database Design']/@name", &db2());
        assert_eq!(authors, vec!["Berstein"]);
    }

    #[test]
    fn absolute_and_relative_paths_agree_from_root() {
        let doc = db1();
        assert_eq!(
            strings("/db/book/year", &doc),
            strings("db/book/year", &doc)
        );
    }

    #[test]
    fn double_slash_descendants() {
        let years = strings("//year", &db1());
        assert_eq!(years, vec!["1998", "1998"]);
        let all_books = strings("//book", &db2());
        assert_eq!(all_books.len(), 5);
    }

    #[test]
    fn attribute_selection() {
        let pubs = strings("db/book/@publisher", &db1());
        assert_eq!(pubs, vec!["mkp", "acm"]);
        let names = strings("//author/@name", &db2());
        assert_eq!(names, vec!["Stonebraker", "Hellerstein", "Berstein"]);
    }

    #[test]
    fn attribute_predicate() {
        let titles = strings("db/book[@publisher='mkp']/title", &db1());
        assert_eq!(titles, vec!["Readings in Database Systems"]);
    }

    #[test]
    fn positional_predicates() {
        let doc = db1();
        assert_eq!(
            strings("db/book[1]/title", &doc),
            vec!["Readings in Database Systems"]
        );
        assert_eq!(strings("db/book[2]/title", &doc), vec!["Database Design"]);
        assert_eq!(
            strings("db/book[last()]/title", &doc),
            vec!["Database Design"]
        );
        assert_eq!(
            strings("db/book[position() = 1]/author", &doc),
            vec!["Stonebraker", "Hellerstein"]
        );
    }

    #[test]
    fn wildcard_steps() {
        let doc = db1();
        // All children of both books.
        assert_eq!(strings("db/book/*", &doc).len(), 10);
        assert_eq!(strings("db/*/title", &doc).len(), 2);
    }

    #[test]
    fn text_node_test() {
        let doc = db1();
        let texts = strings("db/book/title/text()", &doc);
        assert_eq!(
            texts,
            vec!["Readings in Database Systems", "Database Design"]
        );
    }

    #[test]
    fn parent_and_self_steps() {
        let doc = db1();
        let titles = strings("db/book/editor/../title", &doc);
        assert_eq!(titles.len(), 2);
        let same = strings("db/book/./title", &doc);
        assert_eq!(same.len(), 2);
    }

    #[test]
    fn union_results_in_document_order() {
        let doc = db1();
        let people = strings("db/book/writer | db/book/author", &doc);
        assert_eq!(
            people,
            vec!["Stonebraker", "Hellerstein", "Berstein", "Newcomer"]
        );
    }

    #[test]
    fn numeric_comparison_predicates() {
        let doc = db1();
        assert_eq!(strings("db/book[year >= 1998]/title", &doc).len(), 2);
        assert_eq!(strings("db/book[year > 1998]/title", &doc).len(), 0);
        assert_eq!(strings("db/book[year = 1998]/title", &doc).len(), 2);
        assert_eq!(strings("db/book[year != 1998]/title", &doc).len(), 0);
    }

    #[test]
    fn boolean_connectives_in_predicates() {
        let doc = db1();
        let titles = strings("db/book[@publisher='acm' and year=1998]/title", &doc);
        assert_eq!(titles, vec!["Database Design"]);
        let titles = strings("db/book[@publisher='none' or editor='Gamer']/title", &doc);
        assert_eq!(titles, vec!["Database Design"]);
    }

    #[test]
    fn functions() {
        let doc = db1();
        let q = Query::compile("count(//book)").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(2.0));

        let q = Query::compile("sum(db/book/year)").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(3996.0));

        let titles = strings("db/book[contains(title, 'Design')]/title", &doc);
        assert_eq!(titles, vec!["Database Design"]);

        let titles = strings("db/book[starts-with(title, 'Readings')]/title", &doc);
        assert_eq!(titles, vec!["Readings in Database Systems"]);

        let titles = strings("db/book[not(contains(title, 'Design'))]/title", &doc);
        assert_eq!(titles, vec!["Readings in Database Systems"]);

        let q = Query::compile("string-length('abc')").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(3.0));

        let q = Query::compile("normalize-space('  a   b ')").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Text("a b".into()));

        let q = Query::compile("concat('a', 'b', 'c')").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Text("abc".into()));

        let q = Query::compile("floor(2.7) + ceiling(2.1) + round(2.5)").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(8.0));
    }

    #[test]
    fn string_functions() {
        let doc = db1();
        let eval = |q: &str| Query::compile(q).unwrap().evaluate(&doc).unwrap();
        assert_eq!(eval("substring('12345', 2, 3)"), Value::Text("234".into()));
        assert_eq!(eval("substring('12345', 2)"), Value::Text("2345".into()));
        // Spec edge cases: rounding and out-of-range starts.
        assert_eq!(
            eval("substring('12345', 1.5, 2.6)"),
            Value::Text("234".into())
        );
        assert_eq!(eval("substring('12345', 0, 3)"), Value::Text("12".into()));
        assert_eq!(eval("substring('12345', -1, 3)"), Value::Text("1".into()));
        assert_eq!(
            eval("substring-before('1999/04/01', '/')"),
            Value::Text("1999".into())
        );
        assert_eq!(
            eval("substring-after('1999/04/01', '/')"),
            Value::Text("04/01".into())
        );
        assert_eq!(
            eval("substring-before('abc', 'z')"),
            Value::Text(String::new())
        );
        assert_eq!(
            eval("translate('bar', 'abc', 'ABC')"),
            Value::Text("BAr".into())
        );
        // Characters with no replacement are removed.
        assert_eq!(
            eval("translate('--aaa--', 'abc-', 'ABC')"),
            Value::Text("AAA".into())
        );
    }

    #[test]
    fn substring_in_predicate() {
        let doc = db1();
        let titles = strings("db/book[substring(title, 1, 8) = 'Database']/title", &doc);
        assert_eq!(titles, vec!["Database Design"]);
    }

    #[test]
    fn name_function() {
        let doc = db1();
        let q = Query::compile("name(db/book[1]/*[1])").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Text("title".into()));
    }

    #[test]
    fn nested_path_predicates() {
        let doc = db2();
        // Publishers that publish a given book title.
        let names = strings("db/publisher[author/book='Database Design']/@name", &doc);
        assert_eq!(names, vec!["acm"]);
    }

    #[test]
    fn arithmetic_expressions() {
        let doc = db1();
        let q = Query::compile("db/book[year mod 2 = 0]/year").unwrap();
        assert_eq!(q.select(&doc).len(), 2);
        let q = Query::compile("(1 + 2) * 3").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(9.0));
        let q = Query::compile("10 div 4").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Number(2.5));
    }

    #[test]
    fn empty_results_are_empty_not_errors() {
        let doc = db1();
        assert!(strings("db/nonexistent", &doc).is_empty());
        assert!(strings("db/book[title='No Such']/author", &doc).is_empty());
        assert!(strings("db/book/@missing", &doc).is_empty());
    }

    #[test]
    fn node_set_to_node_set_comparison() {
        let doc = db1();
        // Books whose editor equals some writer name: none.
        let q = Query::compile("db/book[editor = writer]/title").unwrap();
        assert!(q.select(&doc).is_empty());
        // Exists book pair with same year (existential across sets).
        let q = Query::compile("db/book[1]/year = db/book[2]/year").unwrap();
        assert_eq!(q.evaluate(&doc).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn errors_are_reported() {
        let doc = db1();
        assert!(Query::compile("count()").unwrap().evaluate(&doc).is_err());
        assert!(Query::compile("count('x')")
            .unwrap()
            .evaluate(&doc)
            .is_err());
        assert!(Query::compile("frobnicate(1)")
            .unwrap()
            .evaluate(&doc)
            .is_err());
        assert!(Query::compile("'a' | 'b'").unwrap().evaluate(&doc).is_err());
    }

    #[test]
    fn compile_display_roundtrip_preserves_semantics() {
        let doc = db1();
        for q in [
            "db/book[title='Database Design']/writer",
            "//book/@publisher",
            "db/book[2]/editor",
            "db/book[year >= 1998 and @publisher='acm']/title",
        ] {
            let compiled = Query::compile(q).unwrap();
            let reprinted = Query::compile(&compiled.to_string()).unwrap();
            let a: Vec<String> = compiled
                .select(&doc)
                .iter()
                .map(|n| n.string_value(&doc))
                .collect();
            let b: Vec<String> = reprinted
                .select(&doc)
                .iter()
                .map(|n| n.string_value(&doc))
                .collect();
            assert_eq!(a, b, "roundtrip changed semantics for {q}");
        }
    }

    #[test]
    fn select_from_context_node() {
        let doc = db1();
        let root = doc.root_element().unwrap();
        let book2 = doc.child_elements_named(root, "book").nth(1).unwrap();
        let q = Query::compile("editor").unwrap();
        let got = q.select_from(&doc, NodeRef::Node(book2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].string_value(&doc), "Gamer");
    }

    #[test]
    fn descendant_queries_work_from_detached_contexts() {
        // Detached subtrees are absent from the name index; descendant
        // name steps must fall back to traversal, matching child steps.
        let mut doc = db1();
        let root = doc.root_element().unwrap();
        let book1 = doc.child_elements_named(root, "book").next().unwrap();
        let copy = doc.clone_subtree(book1).unwrap();
        for q in [".//title", "descendant-or-self::title", "title"] {
            let got = Query::compile(q)
                .unwrap()
                .select_from(&doc, NodeRef::Node(copy));
            assert_eq!(got.len(), 1, "query {q} on detached context");
            assert_eq!(got[0].string_value(&doc), "Readings in Database Systems");
        }
    }

    #[test]
    fn duplicate_elimination_in_paths() {
        // `..` from both children must yield the parent once.
        let doc = db1();
        let parents = strings("db/book/*/..", &doc);
        assert_eq!(parents.len(), 2); // two books, each once
    }
}
