//! Abstract syntax tree for the XPath subset, with a `Display`
//! implementation that renders the canonical query text (identity
//! queries are persisted in this textual form).

use std::fmt;

/// A navigation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::` (the default axis).
    Child,
    /// `descendant-or-self::node()` — what `//` expands to.
    DescendantOrSelf,
    /// `self::` — what `.` expands to.
    SelfAxis,
    /// `parent::` — what `..` expands to.
    Parent,
    /// `attribute::` — what `@` expands to.
    Attribute,
}

/// What a step matches.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A specific element or attribute name.
    Name(String),
    /// `*` — any element (or any attribute on the attribute axis).
    Wildcard,
    /// `text()` — text and CDATA nodes.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// One location step: axis, node test, and zero or more predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis to traverse.
    pub axis: Axis,
    /// The node test to apply.
    pub test: NodeTest,
    /// Predicate expressions, applied in order.
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A `child::name` step with no predicates.
    pub fn child(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    /// An `attribute::name` step with no predicates.
    pub fn attribute(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Attribute,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    /// Adds a predicate to the step.
    pub fn with_predicate(mut self, predicate: Expr) -> Self {
        self.predicates.push(predicate);
        self
    }
}

/// A location path: optional leading `/` plus a sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// `true` for absolute paths (starting at the document node).
    pub absolute: bool,
    /// The steps, applied left to right.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// An absolute path from the given steps.
    pub fn absolute(steps: Vec<Step>) -> Self {
        PathExpr {
            absolute: true,
            steps,
        }
    }

    /// A relative path from the given steps.
    pub fn relative(steps: Vec<Step>) -> Self {
        PathExpr {
            absolute: false,
            steps,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|` (node-set union)
    Union,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl BinaryOp {
    fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "or",
            BinaryOp::And => "and",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Union => "|",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "div",
            BinaryOp::Mod => "mod",
        }
    }
}

/// An XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A location path.
    Path(PathExpr),
    /// A string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Negate(Box<Expr>),
    /// A function call.
    Call {
        /// Function name (e.g. `"count"`).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: a string literal expression.
    pub fn literal(s: impl Into<String>) -> Self {
        Expr::Literal(s.into())
    }

    /// Convenience: `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary {
            op: BinaryOp::Eq,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: a relative single-name child path (`name`).
    pub fn child_path(name: impl Into<String>) -> Self {
        Expr::Path(PathExpr::relative(vec![Step::child(name)]))
    }

    /// Convenience: a relative attribute path (`@name`).
    pub fn attr_path(name: impl Into<String>) -> Self {
        Expr::Path(PathExpr::relative(vec![Step::attribute(name)]))
    }
}

// ---------------------------------------------------------------------
// Display: canonical textual form
// ---------------------------------------------------------------------

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::AnyNode => write!(f, "node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => write!(f, "{}", self.test)?,
            Axis::Attribute => write!(f, "@{}", self.test)?,
            Axis::SelfAxis => {
                if self.test == NodeTest::AnyNode {
                    write!(f, ".")?;
                } else {
                    write!(f, "self::{}", self.test)?;
                }
            }
            Axis::Parent => {
                if self.test == NodeTest::AnyNode {
                    write!(f, "..")?;
                } else {
                    write!(f, "parent::{}", self.test)?;
                }
            }
            Axis::DescendantOrSelf => write!(f, "descendant-or-self::{}", self.test)?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

// `PathExpr` rendering collapses `descendant-or-self::node()` (no
// predicates) followed by another step back into the `//` shorthand.
impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute && self.steps.is_empty() {
            return write!(f, "/");
        }
        let mut rendered = String::new();
        let mut pending_dslash = false;
        let mut wrote_first = false;
        for step in &self.steps {
            let is_abbrev_dos = step.axis == Axis::DescendantOrSelf
                && step.test == NodeTest::AnyNode
                && step.predicates.is_empty();
            if is_abbrev_dos {
                pending_dslash = true;
                continue;
            }
            let joiner = if pending_dslash { "//" } else { "/" };
            if !wrote_first {
                if self.absolute {
                    rendered.push_str(joiner);
                } else if pending_dslash {
                    rendered.push_str(".//");
                }
            } else {
                rendered.push_str(joiner);
            }
            rendered.push_str(&step.to_string());
            wrote_first = true;
            pending_dslash = false;
        }
        if pending_dslash {
            // Trailing bare `//` (uncommon); render explicitly.
            if wrote_first || self.absolute {
                rendered.push_str("/descendant-or-self::node()");
            } else {
                rendered.push_str("descendant-or-self::node()");
            }
        }
        f.write_str(&rendered)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Literal(s) => {
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                // Parenthesize nested binary operands conservatively.
                let fmt_side = |side: &Expr, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    match side {
                        Expr::Binary { .. } => write!(f, "({side})"),
                        _ => write!(f, "{side}"),
                    }
                };
                fmt_side(lhs, f)?;
                match op {
                    BinaryOp::Or | BinaryOp::And | BinaryOp::Div | BinaryOp::Mod => {
                        write!(f, " {} ", op.symbol())?
                    }
                    _ => write!(f, " {} ", op.symbol())?,
                }
                fmt_side(rhs, f)
            }
            Expr::Negate(e) => write!(f, "-{e}"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple_path() {
        let p = PathExpr::absolute(vec![Step::child("db"), Step::child("book")]);
        assert_eq!(p.to_string(), "/db/book");
    }

    #[test]
    fn display_relative_path_with_attribute() {
        let p = PathExpr::relative(vec![Step::child("book"), Step::attribute("publisher")]);
        assert_eq!(p.to_string(), "book/@publisher");
    }

    #[test]
    fn display_predicate() {
        let step = Step::child("book").with_predicate(Expr::eq(
            Expr::child_path("title"),
            Expr::literal("DB Design"),
        ));
        let p = PathExpr::absolute(vec![Step::child("db"), step, Step::child("author")]);
        assert_eq!(p.to_string(), "/db/book[title = 'DB Design']/author");
    }

    #[test]
    fn display_double_slash() {
        let p = PathExpr::absolute(vec![
            Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                predicates: vec![],
            },
            Step::child("year"),
        ]);
        assert_eq!(p.to_string(), "//year");
    }

    #[test]
    fn display_function_call() {
        let e = Expr::Call {
            name: "count".into(),
            args: vec![Expr::child_path("book")],
        };
        assert_eq!(e.to_string(), "count(book)");
    }

    #[test]
    fn display_number_integral() {
        assert_eq!(Expr::Number(3.0).to_string(), "3");
        assert_eq!(Expr::Number(2.5).to_string(), "2.5");
    }

    #[test]
    fn display_quotes_literals_with_apostrophes() {
        assert_eq!(Expr::literal("it's").to_string(), "\"it's\"");
    }
}
