//! XPath-subset query engine for WmXML.
//!
//! This crate is the query half of the paper's "XML Query Engine"
//! (its Fig. 4). WmXML expresses *everything* as queries: usability is
//! defined by query templates, watermark-carrying elements are identified
//! by queries, and detection re-executes (possibly rewritten) queries. The
//! engine therefore implements the XPath 1.0 subset those queries need:
//!
//! * axes: `child`, `descendant-or-self` (`//`), `self` (`.`),
//!   `parent` (`..`), and `attribute` (`@`);
//! * node tests: names, `*`, `text()`, `node()`;
//! * predicates: full expressions with `and`/`or`, `=`/`!=`/`<`/`<=`/
//!   `>`/`>=`, positional predicates, nested paths;
//! * the function library used in practice: `position`, `last`, `count`,
//!   `contains`, `starts-with`, `not`, `true`, `false`, `name`, `string`,
//!   `number`, `boolean`, `string-length`, `normalize-space`, `concat`,
//!   `sum`, `floor`, `ceiling`, `round`;
//! * union expressions (`|`).
//!
//! Compiled queries render back to XPath text via `Display`, which is how
//! identity queries are persisted by the user between embedding and
//! detection.
//!
//! # Example
//!
//! ```
//! use wmx_xml::parse;
//! use wmx_xpath::Query;
//!
//! let doc = parse("<db><book><title>DB Design</title><author>Bernstein</author></book></db>").unwrap();
//! let q = Query::compile("/db/book[title='DB Design']/author").unwrap();
//! let hits = q.select(&doc);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].string_value(&doc), "Bernstein");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod engine;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Axis, Expr, NodeTest, PathExpr, Step};
pub use batch::batch_select;
pub use engine::Query;
pub use error::XPathError;
pub use eval::Evaluator;
pub use value::{NodeRef, Value};

pub mod error {
    //! Error type shared by the lexer, parser, and evaluator.

    use std::fmt;

    /// An XPath compilation or evaluation error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct XPathError {
        /// Human-readable description.
        pub message: String,
        /// Character offset in the query text, when known.
        pub offset: Option<usize>,
    }

    impl XPathError {
        /// Creates an error at a character offset.
        pub fn at(message: impl Into<String>, offset: usize) -> Self {
            XPathError {
                message: message.into(),
                offset: Some(offset),
            }
        }

        /// Creates an error with no position (evaluation errors).
        pub fn new(message: impl Into<String>) -> Self {
            XPathError {
                message: message.into(),
                offset: None,
            }
        }
    }

    impl fmt::Display for XPathError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.offset {
                Some(o) => write!(f, "{} (at offset {o})", self.message),
                None => write!(f, "{}", self.message),
            }
        }
    }

    impl std::error::Error for XPathError {}
}
