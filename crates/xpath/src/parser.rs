//! Recursive-descent parser for the XPath subset.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! Expr        := OrExpr
//! OrExpr      := AndExpr ('or' AndExpr)*
//! AndExpr     := EqExpr ('and' EqExpr)*
//! EqExpr      := RelExpr (('=' | '!=') RelExpr)*
//! RelExpr     := AddExpr (('<' | '<=' | '>' | '>=') AddExpr)*
//! AddExpr     := MulExpr (('+' | '-') MulExpr)*
//! MulExpr     := UnaryExpr (('*' | 'div' | 'mod') UnaryExpr)*
//! UnaryExpr   := '-' UnaryExpr | UnionExpr
//! UnionExpr   := PathOrPrimary ('|' PathOrPrimary)*
//! ```
//!
//! A primary is a literal, number, function call, parenthesized
//! expression, or location path.

use crate::ast::{Axis, BinaryOp, Expr, NodeTest, PathExpr, Step};
use crate::error::XPathError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parses a complete expression.
pub fn parse_expr(input: &str) -> Result<Expr, XPathError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(XPathError::at(
            format!("unexpected trailing token {:?}", p.peek().unwrap().token),
            p.peek().unwrap().offset,
        ));
    }
    Ok(expr)
}

/// Parses input that must be a location path (the common case for
/// identity queries and templates).
pub fn parse_path(input: &str) -> Result<PathExpr, XPathError> {
    match parse_expr(input)? {
        Expr::Path(p) => Ok(p),
        other => Err(XPathError::new(format!(
            "expected a location path, got expression {other}"
        ))),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn peek_token(&self) -> Option<&Token> {
        self.peek().map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), XPathError> {
        match self.peek() {
            Some(s) if &s.token == token => {
                self.pos += 1;
                Ok(())
            }
            Some(s) => Err(XPathError::at(
                format!("expected {what}, found {:?}", s.token),
                s.offset,
            )),
            None => Err(XPathError::new(format!(
                "expected {what}, found end of query"
            ))),
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek_token() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn offset(&self) -> usize {
        self.peek().map(|s| s.offset).unwrap_or(usize::MAX)
    }

    // -- precedence climbing ------------------------------------------

    fn parse_or(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("or") {
            let rhs = self.parse_and()?;
            lhs = binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_equality()?;
        while self.eat_keyword("and") {
            let rhs = self.parse_equality()?;
            lhs = binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Eq) => BinaryOp::Eq,
                Some(Token::Ne) => BinaryOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::Le) => BinaryOp::Le,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::Ge) => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_token() {
                // `*` is multiplication only when an operand precedes it
                // here, which it does at this point in the grammar.
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Name(n)) if n == "div" => BinaryOp::Div,
                Some(Token::Name(n)) if n == "mod" => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, XPathError> {
        if self.eat(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Negate(Box::new(inner)));
        }
        self.parse_union()
    }

    fn parse_union(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.parse_primary()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.parse_primary()?;
            lhs = binary(BinaryOp::Union, lhs, rhs);
        }
        Ok(lhs)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        match self.peek_token() {
            Some(Token::Name(n)) if n == kw => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    // -- primaries ------------------------------------------------------

    fn parse_primary(&mut self) -> Result<Expr, XPathError> {
        match self.peek_token() {
            Some(Token::Literal(_)) => {
                let Some(Spanned {
                    token: Token::Literal(s),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked literal")
                };
                Ok(Expr::Literal(s))
            }
            Some(Token::Number(_)) => {
                let Some(Spanned {
                    token: Token::Number(n),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked number")
                };
                Ok(Expr::Number(n))
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Name(name))
                if self.peek2() == Some(&Token::LParen) && !is_node_type_name(name) =>
            {
                // Function call.
                let Some(Spanned {
                    token: Token::Name(name),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked name")
                };
                self.bump(); // (
                let mut args = Vec::new();
                if self.peek_token() != Some(&Token::RParen) {
                    loop {
                        args.push(self.parse_or()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen, "')' after function arguments")?;
                Ok(Expr::Call { name, args })
            }
            _ => self.parse_location_path().map(Expr::Path),
        }
    }

    fn parse_location_path(&mut self) -> Result<PathExpr, XPathError> {
        let mut steps = Vec::new();
        let absolute = match self.peek_token() {
            Some(Token::Slash) => {
                self.bump();
                true
            }
            Some(Token::DoubleSlash) => {
                self.bump();
                steps.push(descendant_or_self_step());
                true
            }
            _ => false,
        };

        // `/` alone selects the document node.
        if absolute && !self.at_step_start() {
            if steps.is_empty() {
                return Ok(PathExpr::absolute(steps));
            }
            return Err(XPathError::at("expected a step after '//'", self.offset()));
        }

        if !absolute && !self.at_step_start() {
            return Err(XPathError::at(
                format!(
                    "expected an expression, found {}",
                    self.peek_token()
                        .map(|t| format!("{t:?}"))
                        .unwrap_or_else(|| "end of query".to_string())
                ),
                self.offset(),
            ));
        }

        steps.push(self.parse_step()?);
        loop {
            match self.peek_token() {
                Some(Token::Slash) => {
                    self.bump();
                    steps.push(self.parse_step()?);
                }
                Some(Token::DoubleSlash) => {
                    self.bump();
                    steps.push(descendant_or_self_step());
                    steps.push(self.parse_step()?);
                }
                _ => break,
            }
        }
        Ok(PathExpr { absolute, steps })
    }

    fn at_step_start(&self) -> bool {
        matches!(
            self.peek_token(),
            Some(Token::Name(_) | Token::Star | Token::At | Token::Dot | Token::DotDot)
        )
    }

    fn parse_step(&mut self) -> Result<Step, XPathError> {
        let mut step = match self.peek_token() {
            Some(Token::Dot) => {
                self.bump();
                Step {
                    axis: Axis::SelfAxis,
                    test: NodeTest::AnyNode,
                    predicates: Vec::new(),
                }
            }
            Some(Token::DotDot) => {
                self.bump();
                Step {
                    axis: Axis::Parent,
                    test: NodeTest::AnyNode,
                    predicates: Vec::new(),
                }
            }
            Some(Token::At) => {
                self.bump();
                let test = self.parse_node_test(Axis::Attribute)?;
                Step {
                    axis: Axis::Attribute,
                    test,
                    predicates: Vec::new(),
                }
            }
            Some(Token::Name(name)) if self.peek2() == Some(&Token::DoubleColon) => {
                let axis = match name.as_str() {
                    "child" => Axis::Child,
                    "self" => Axis::SelfAxis,
                    "parent" => Axis::Parent,
                    "attribute" => Axis::Attribute,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    other => {
                        return Err(XPathError::at(
                            format!("unsupported axis {other:?}"),
                            self.offset(),
                        ))
                    }
                };
                self.bump(); // axis name
                self.bump(); // ::
                let test = self.parse_node_test(axis)?;
                Step {
                    axis,
                    test,
                    predicates: Vec::new(),
                }
            }
            _ => {
                let test = self.parse_node_test(Axis::Child)?;
                Step {
                    axis: Axis::Child,
                    test,
                    predicates: Vec::new(),
                }
            }
        };
        while self.eat(&Token::LBracket) {
            let predicate = self.parse_or()?;
            self.expect(&Token::RBracket, "']' closing a predicate")?;
            step.predicates.push(predicate);
        }
        Ok(step)
    }

    fn parse_node_test(&mut self, _axis: Axis) -> Result<NodeTest, XPathError> {
        match self.peek_token() {
            Some(Token::Star) => {
                self.bump();
                Ok(NodeTest::Wildcard)
            }
            Some(Token::Name(name)) if self.peek2() == Some(&Token::LParen) => {
                let name = name.clone();
                match name.as_str() {
                    "text" => {
                        self.bump();
                        self.bump();
                        self.expect(&Token::RParen, "')' after text(")?;
                        Ok(NodeTest::Text)
                    }
                    "node" => {
                        self.bump();
                        self.bump();
                        self.expect(&Token::RParen, "')' after node(")?;
                        Ok(NodeTest::AnyNode)
                    }
                    _ => Err(XPathError::at(
                        format!("unsupported node type test {name:?}"),
                        self.offset(),
                    )),
                }
            }
            Some(Token::Name(_)) => {
                let Some(Spanned {
                    token: Token::Name(name),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked name")
                };
                Ok(NodeTest::Name(name))
            }
            other => Err(XPathError::at(
                format!("expected a node test, found {other:?}"),
                self.offset(),
            )),
        }
    }
}

fn is_node_type_name(name: &str) -> bool {
    matches!(name, "text" | "node" | "comment" | "processing-instruction")
}

fn descendant_or_self_step() -> Step {
    Step {
        axis: Axis::DescendantOrSelf,
        test: NodeTest::AnyNode,
        predicates: Vec::new(),
    }
}

fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_db1() {
        let p = parse_path("db/book[title='DB Design']/author").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].predicates.len(), 1);
        assert_eq!(p.to_string(), "db/book[title = 'DB Design']/author");
    }

    #[test]
    fn parses_paper_query_db2() {
        let p = parse_path("db/publisher/author[book='DB Design']/@name").unwrap();
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[3].axis, Axis::Attribute);
    }

    #[test]
    fn parses_absolute_and_double_slash() {
        let p = parse_path("//book/year").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3); // dos + book + year
        assert_eq!(p.to_string(), "//book/year");

        let p2 = parse_path("/db//year").unwrap();
        assert_eq!(p2.to_string(), "/db//year");
    }

    #[test]
    fn parses_wildcard_and_attribute_wildcard() {
        let p = parse_path("db/*/@*").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Wildcard);
        assert_eq!(p.steps[2].axis, Axis::Attribute);
        assert_eq!(p.steps[2].test, NodeTest::Wildcard);
    }

    #[test]
    fn parses_positional_predicate() {
        let p = parse_path("db/book[2]").unwrap();
        assert_eq!(p.steps[1].predicates[0], Expr::Number(2.0));
    }

    #[test]
    fn parses_boolean_connectives() {
        let e = parse_expr("a and b or c").unwrap();
        // Precedence: (a and b) or c
        assert_eq!(e.to_string(), "(a and b) or c");
    }

    #[test]
    fn parses_comparison_chain() {
        let e = parse_expr("year >= 1990 and year < 2000").unwrap();
        assert_eq!(e.to_string(), "(year >= 1990) and (year < 2000)");
    }

    #[test]
    fn parses_function_calls() {
        let e = parse_expr("count(//book)").unwrap();
        assert_eq!(e.to_string(), "count(//book)");
        let e = parse_expr("contains(title, 'Data')").unwrap();
        assert_eq!(e.to_string(), "contains(title, 'Data')");
        let e = parse_expr("not(position() = last())").unwrap();
        assert_eq!(e.to_string(), "not(position() = last())");
    }

    #[test]
    fn parses_text_node_test() {
        let p = parse_path("book/title/text()").unwrap();
        assert_eq!(p.steps[2].test, NodeTest::Text);
    }

    #[test]
    fn parses_parent_and_self() {
        let p = parse_path("book/../publisher/.").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Parent);
        assert_eq!(p.steps[3].axis, Axis::SelfAxis);
    }

    #[test]
    fn parses_union() {
        let e = parse_expr("author | writer").unwrap();
        assert_eq!(e.to_string(), "author | writer");
    }

    #[test]
    fn parses_explicit_axes() {
        let p = parse_path("child::book/attribute::id").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[1].axis, Axis::Attribute);
    }

    #[test]
    fn parses_arithmetic() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + (2 * 3)");
        let e = parse_expr("10 div 2 mod 3").unwrap();
        assert_eq!(e.to_string(), "(10 div 2) mod 3");
        let e = parse_expr("-price").unwrap();
        assert_eq!(e.to_string(), "-price");
    }

    #[test]
    fn parses_nested_predicates() {
        let p = parse_path("db/book[author[. = 'Stonebraker']]/title").unwrap();
        assert_eq!(p.steps[1].predicates.len(), 1);
    }

    #[test]
    fn parses_root_only() {
        let p = parse_path("/").unwrap();
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn error_cases() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("db/book[").is_err());
        assert!(parse_expr("db/book]").is_err());
        assert!(parse_expr("db//").is_err());
        assert!(parse_expr("count(").is_err());
        assert!(parse_expr("ancestor::x").is_err()); // unsupported axis
        assert!(parse_expr("comment()").is_err()); // unsupported node test
        assert!(parse_expr("a b").is_err()); // trailing token
    }

    #[test]
    fn roundtrip_display_reparses() {
        for q in [
            "db/book[title = 'DB Design']/author",
            "//publisher/@name",
            "/db/book[2]/year",
            "count(//book) > 3",
            "db/book[year >= 1990 and year < 2000]/title",
            "author | writer",
            "db/book[not(contains(title, 'XML'))]",
        ] {
            let e = parse_expr(q).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(
                printed,
                reparsed.to_string(),
                "display/reparse not stable for {q}"
            );
        }
    }
}
