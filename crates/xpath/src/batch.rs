//! Batched evaluation of identity-query sets.
//!
//! DOM detection answers one stored identity query per marked unit, and
//! every query of one family (`/db/book[year = '1998']/year`, …) walks
//! the same instance list and evaluates the same key path per instance
//! — Q queries × C candidates predicate evaluations. [`batch_select`]
//! decomposes each query into *shared shape* + *literal tuple*, groups
//! queries by shape, evaluates the shared part once per group (one pass
//! over the `NameIndex`-backed instance scan, one key-path evaluation
//! per candidate), and answers every member query from the resulting
//! value index — C evaluations total.
//!
//! The contract is exactness: for every query the returned node list is
//! identical (same nodes, same order) to `Query::select_with` on the
//! same evaluator. Queries that do not fit the decomposable shape — or
//! whose shared pass raises an evaluation error, which per-query
//! evaluation may swallow differently — come back as `None` and the
//! caller falls back to the per-query path.

use crate::ast::{Axis, BinaryOp, Expr, NodeTest, PathExpr, Step};
use crate::engine::Query;
use crate::error::XPathError;
use crate::eval::Evaluator;
use crate::value::NodeRef;
use std::collections::HashMap;

/// One decomposed identity query: `/prefix/split[pre][p1 = 'l1']…/suffix`
/// where the stripped trailing predicates are `path = 'literal'`
/// comparisons on the *last* predicated step. Everything except the
/// literal tuple is shape, shared across a group.
struct Decomposed<'q> {
    prefix: &'q [Step],
    split_axis: Axis,
    split_test: &'q NodeTest,
    pre_predicates: &'q [Expr],
    pred_paths: Vec<&'q PathExpr>,
    literals: Vec<&'q str>,
    suffix: &'q [Step],
}

fn eq_path_literal(expr: &Expr) -> Option<(&PathExpr, &str)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        lhs,
        rhs,
    } = expr
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Path(path), Expr::Literal(lit)) => Some((path, lit)),
        _ => None,
    }
}

/// Splits an absolute path query at its last predicated step, stripping
/// the maximal trailing run of `path = 'literal'` predicates. Returns
/// `None` for anything else (caller falls back to per-query eval).
fn decompose(query: &Query) -> Option<Decomposed<'_>> {
    let Expr::Path(path) = query.expr() else {
        return None;
    };
    if !path.absolute {
        return None;
    }
    let k = path.steps.iter().rposition(|s| !s.predicates.is_empty())?;
    let step = &path.steps[k];
    let mut first_eq = step.predicates.len();
    while first_eq > 0 && eq_path_literal(&step.predicates[first_eq - 1]).is_some() {
        first_eq -= 1;
    }
    if first_eq == step.predicates.len() {
        return None; // nothing strippable on the split step
    }
    let mut pred_paths = Vec::with_capacity(step.predicates.len() - first_eq);
    let mut literals = Vec::with_capacity(step.predicates.len() - first_eq);
    for p in &step.predicates[first_eq..] {
        let (pp, lit) = eq_path_literal(p).expect("trailing run is eq-path-literal");
        pred_paths.push(pp);
        literals.push(lit);
    }
    Some(Decomposed {
        prefix: &path.steps[..k],
        split_axis: step.axis,
        split_test: &step.test,
        pre_predicates: &step.predicates[..first_eq],
        pred_paths,
        literals,
        suffix: &path.steps[k + 1..],
    })
}

/// Shape equality: everything except the literal tuple. Two queries of
/// the same shape share one candidate scan.
fn same_shape(a: &Decomposed<'_>, b: &Decomposed<'_>) -> bool {
    a.prefix == b.prefix
        && a.split_axis == b.split_axis
        && a.split_test == b.split_test
        && a.pre_predicates == b.pre_predicates
        && a.pred_paths == b.pred_paths
        && a.suffix == b.suffix
}

/// Evaluates `queries` against `evaluator`, answering shape groups from
/// shared scans. One entry per query: `Some(nodes)` is exactly what
/// `Query::select_with` would return; `None` means this query was not
/// batchable (fall back to per-query evaluation).
pub fn batch_select(evaluator: &Evaluator<'_>, queries: &[Query]) -> Vec<Option<Vec<NodeRef>>> {
    let mut results: Vec<Option<Vec<NodeRef>>> = Vec::with_capacity(queries.len());
    results.resize_with(queries.len(), || None);
    let decomposed: Vec<Option<Decomposed<'_>>> = queries.iter().map(decompose).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, d) in decomposed.iter().enumerate() {
        let Some(d) = d else { continue };
        match groups
            .iter_mut()
            .find(|g| same_shape(decomposed[g[0]].as_ref().expect("grouped"), d))
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    for group in &groups {
        if run_group(evaluator, &decomposed, group, &mut results).is_err() {
            // A shared-pass evaluation error: per-query evaluation may
            // swallow it into an empty result, so hand the whole group
            // back to the fallback path instead of guessing.
            for &qi in group {
                results[qi] = None;
            }
        }
    }
    let metrics = batch_metrics();
    metrics.calls.inc();
    metrics.groups.add(groups.len() as u64);
    let answered = results.iter().filter(|r| r.is_some()).count() as u64;
    metrics.answered.add(answered);
    metrics.fallback.add(results.len() as u64 - answered);
    results
}

/// Registry handles for the batch-selection tallies, resolved once.
struct BatchMetrics {
    calls: std::sync::Arc<wmx_telemetry::Counter>,
    groups: std::sync::Arc<wmx_telemetry::Counter>,
    answered: std::sync::Arc<wmx_telemetry::Counter>,
    fallback: std::sync::Arc<wmx_telemetry::Counter>,
}

fn batch_metrics() -> &'static BatchMetrics {
    static METRICS: std::sync::OnceLock<BatchMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = wmx_telemetry::global();
        BatchMetrics {
            calls: registry.counter("xpath.batch.calls"),
            groups: registry.counter("xpath.batch.groups"),
            answered: registry.counter("xpath.batch.answered"),
            fallback: registry.counter("xpath.batch.fallback"),
        }
    })
}

fn run_group(
    ev: &Evaluator<'_>,
    decomposed: &[Option<Decomposed<'_>>],
    group: &[usize],
    results: &mut [Option<Vec<NodeRef>>],
) -> Result<(), XPathError> {
    let rep = decomposed[group[0]].as_ref().expect("grouped");

    // Shared pass 1: the prefix steps from the document node — the same
    // start `eval_path` uses for an absolute path.
    let start = vec![NodeRef::Node(ev.document().document_node())];
    let prefix_result = ev.eval_steps(rep.prefix, start)?;
    let single_ctx = prefix_result.len() == 1;

    // Shared pass 2: split-step candidates (axis + any predicates that
    // precede the stripped run), flattened in per-context order — the
    // exact order `next` accumulates in the step loop.
    let base = Step {
        axis: rep.split_axis,
        test: rep.split_test.clone(),
        predicates: rep.pre_predicates.to_vec(),
    };
    let mut cands: Vec<NodeRef> = Vec::new();
    for ctx in &prefix_result {
        cands.extend(ev.step_candidates(ctx, &base)?);
    }

    // Shared pass 3: evaluate each stripped predicate path once per
    // candidate. The per-query filter keeps a candidate iff every
    // predicate's node-set contains its literal (XPath existential `=`
    // against a string, string-value equality).
    let npreds = rep.pred_paths.len();
    let mut value_sets: Vec<Vec<Vec<String>>> = Vec::with_capacity(cands.len());
    for cand in &cands {
        let mut per_pred = Vec::with_capacity(npreds);
        for pp in &rep.pred_paths {
            let nodes = ev.eval_path(pp, cand)?;
            per_pred.push(
                nodes
                    .iter()
                    .map(|n| n.string_value(ev.document()))
                    .collect::<Vec<String>>(),
            );
        }
        value_sets.push(per_pred);
    }

    // Candidates whose predicate paths are all single-valued (the
    // overwhelmingly common case: one key child per instance) are
    // indexed by their value tuple; multi-valued ones fall into a
    // short scan list checked existentially per query.
    let mut index: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
    let mut irregular: Vec<usize> = Vec::new();
    for (i, per_pred) in value_sets.iter().enumerate() {
        if per_pred.iter().all(|vals| vals.len() == 1) {
            let tuple: Vec<&str> = per_pred.iter().map(|vals| vals[0].as_str()).collect();
            index.entry(tuple).or_default().push(i);
        } else {
            irregular.push(i);
        }
    }

    for &qi in group {
        let dq = decomposed[qi].as_ref().expect("grouped");
        let mut matched_idx: Vec<usize> = index.get(&dq.literals).cloned().unwrap_or_default();
        for &i in &irregular {
            let per_pred = &value_sets[i];
            if dq
                .literals
                .iter()
                .zip(per_pred)
                .all(|(lit, vals)| vals.iter().any(|v| v == lit))
            {
                matched_idx.push(i);
            }
        }
        // Ascending candidate index restores the flat per-context
        // accumulation order of the step loop.
        matched_idx.sort_unstable();
        let matched: Vec<NodeRef> = matched_idx.iter().map(|&i| cands[i].clone()).collect();
        let current = if single_ctx {
            matched
        } else {
            ev.document_order(matched)
        };
        let nodes = if current.is_empty() {
            current
        } else {
            ev.eval_steps(dq.suffix, current)?
        };
        results[qi] = Some(nodes);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmx_xml::parse;

    fn q(text: &str) -> Query {
        Query::compile(text).unwrap()
    }

    fn doc() -> wmx_xml::Document {
        parse(
            r#"<db>
                <book><title>A</title><year>1998</year></book>
                <book><title>B</title><year>1999</year></book>
                <book><title>A</title><year>2000</year></book>
                <book><year>1998</year></book>
            </db>"#,
        )
        .unwrap()
    }

    fn assert_matches_select(queries: &[Query]) {
        let doc = doc();
        let ev = Evaluator::new(&doc);
        let batched = batch_select(&ev, queries);
        for (query, batch) in queries.iter().zip(&batched) {
            let direct = query.select_with(&ev);
            // None = fallback path: the caller runs select_with itself.
            if let Some(nodes) = batch {
                assert_eq!(nodes, &direct, "batch drift on {query}");
            }
        }
    }

    #[test]
    fn grouped_identity_queries_match_direct_eval() {
        assert_matches_select(&[
            q("/db/book[title = 'A']/year"),
            q("/db/book[title = 'B']/year"),
            q("/db/book[title = 'Z']/year"),
            q("/db/book[year = '1998']/title"),
        ]);
    }

    #[test]
    fn multi_predicate_and_duplicate_matches() {
        assert_matches_select(&[
            q("/db/book[title = 'A'][year = '1998']/year"),
            q("/db/book[title = 'A'][year = '2000']/year"),
            q("/db/book[title = 'A']/title"),
        ]);
    }

    #[test]
    fn unbatchable_queries_fall_back() {
        let queries = [
            q("/db/book/year"),
            q("//book[1]/year"),
            q("count(/db/book)"),
        ];
        let doc = doc();
        let ev = Evaluator::new(&doc);
        let batched = batch_select(&ev, &queries);
        assert!(batched[0].is_none(), "no predicates to strip");
        assert!(batched[1].is_none(), "positional predicate");
        assert!(batched[2].is_none(), "not a path");
    }

    #[test]
    fn suffix_and_descendant_prefixes_match() {
        assert_matches_select(&[
            q("//book[title = 'A']/year"),
            q("//book[title = 'B']/year"),
            q("/db/book[year = '1998']"),
            q("/db/book[year = '1999']"),
        ]);
    }
}
