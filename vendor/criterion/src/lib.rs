//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the Criterion API used by the benches in
//! `crates/bench/benches/`: [`Criterion::bench_function`], benchmark
//! groups with throughput/sample-size settings, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a simple warmup + fixed-budget measurement loop;
//! it reports mean wall-clock time per iteration to stdout. No plots,
//! no statistics beyond the mean — enough to compare hot paths while
//! the build environment has no access to crates.io.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes, reported in decimal units.
    BytesDecimal(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    measured: Option<MeasuredRun>,
}

struct MeasuredRun {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up briefly then measuring for a
    /// fixed wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: run for ~20ms to stabilize caches/branch predictors.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }

        // Measurement: aim for ~120ms of samples.
        let budget = Duration::from_millis(120);
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let mut batch = (budget.as_nanos() / per_iter.max(1)).clamp(1, 5_000_000) as u64;
        if batch == 0 {
            batch = 1;
        }
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.measured = Some(MeasuredRun {
            total: start.elapsed(),
            iters: batch,
        });
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some(run) => {
            let per_iter = run.total.as_nanos() as f64 / run.iters.max(1) as f64;
            let mut line = format!(
                "bench: {label:<40} {:>12}/iter ({} iters)",
                format_nanos(per_iter),
                run.iters
            );
            if let Some(tp) = throughput {
                let rate = match tp {
                    Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                        let mb = n as f64 / 1e6;
                        format!("{:.1} MB/s", mb / (per_iter / 1e9))
                    }
                    Throughput::Elements(n) => {
                        format!("{:.0} elem/s", n as f64 / (per_iter / 1e9))
                    }
                };
                line.push_str(&format!("  [{rate}]"));
            }
            println!("{line}");
        }
        None => println!("bench: {label:<40} (no measurement)"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted and ignored by this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored by this shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
///
/// Ignores harness arguments such as `--bench`/`--test` that cargo
/// passes to `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow `--bench`, `--test`, filters, etc.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}
