//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the `rand 0.9` API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! via SplitMix64, so every consumer stays deterministic given its seed
//! (the property the attack and dataset crates rely on).

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform range sampling support.
pub mod distr {
    use super::RngCore;

    /// Types that can be sampled uniformly from a bounded range.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform sample from `lo..hi`.
        fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform sample from `lo..=hi`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from `rng`.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_inclusive(start, end, rng)
        }
    }

    macro_rules! int_sample_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    ((lo as i128) + v as i128) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    ((lo as i128) + v as i128) as $t
                }
            }
        )*};
    }

    int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_sample_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    let frac = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64);
                    lo + (frac as $t) * (hi - lo)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    let frac = ((rng.next_u64() >> 10) as f64) / (((1u64 << 54) - 1) as f64);
                    lo + (frac as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_sample_uniform!(f32, f64);
}
