//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        debug_assert!(self.len.start < self.len.end, "empty length range");
        let len = rng.between(self.len.start, self.len.end.saturating_sub(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Produces vectors whose length is drawn from `len` (half-open, as in
/// `proptest::collection::vec(strategy, 0..4)`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
