//! Tiny regex-pattern interpreter for string strategies.
//!
//! Supports exactly the pattern shapes used as strategies in this
//! workspace's tests:
//!
//! * `\PC` — any non-control character (sampled across several Unicode
//!   blocks, including astral-plane characters, to exercise multibyte
//!   handling);
//! * character classes `[...]` with literal chars, `a-z` ranges, a
//!   leading `^` negation, and `&&[^...]` subtraction
//!   (e.g. `[ -~&&[^<&>"']]`);
//! * quantifiers `*` (0–8), `+` (1–8), `?`, `{n}`, and `{lo,hi}`;
//! * literal characters and `\\` escapes.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// Any non-control character.
    AnyPrintable,
    /// A character class: allowed ranges minus excluded ranges, possibly
    /// negated.
    Class {
        negated: bool,
        include: Vec<(char, char)>,
        exclude: Vec<(char, char)>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    lo: usize,
    hi: usize,
}

/// Unicode ranges sampled for `\PC` (all printable, mixed widths).
const PRINTABLE_RANGES: &[(u32, u32)] = &[
    (0x0020, 0x007E),   // ASCII printable
    (0x0020, 0x007E),   // weighted double so ASCII dominates
    (0x00A1, 0x00FF),   // Latin-1 supplement
    (0x0391, 0x03A1),   // Greek capitals
    (0x03B1, 0x03C9),   // Greek smalls
    (0x4E00, 0x4E2F),   // CJK ideographs
    (0x1F600, 0x1F60F), // astral-plane emoji
];

fn parse(pattern: &str) -> Vec<(Atom, Quant)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // `\PC`: negated Unicode category C (control).
                        assert_eq!(
                            chars.get(i + 1),
                            Some(&'C'),
                            "only \\PC is supported, got pattern {pattern:?}"
                        );
                        i += 2;
                        Atom::AnyPrintable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Literal(c)
                    }
                    None => panic!("dangling escape in pattern {pattern:?}"),
                }
            }
            '[' => {
                let (atom, next) = parse_class(&chars, i, pattern);
                i = next;
                atom
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let quant = match chars.get(i) {
            Some('*') => {
                i += 1;
                Quant { lo: 0, hi: 8 }
            }
            Some('+') => {
                i += 1;
                Quant { lo: 1, hi: 8 }
            }
            Some('?') => {
                i += 1;
                Quant { lo: 0, hi: 1 }
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => Quant {
                        lo: lo.trim().parse().expect("bad quantifier bound"),
                        hi: hi.trim().parse().expect("bad quantifier bound"),
                    },
                    None => {
                        let n = body.trim().parse().expect("bad quantifier count");
                        Quant { lo: n, hi: n }
                    }
                }
            }
            _ => Quant { lo: 1, hi: 1 },
        };
        out.push((atom, quant));
    }
    out
}

/// Parses a `[...]` class starting at `chars[start] == '['`.
/// Returns the atom and the index just past the closing `]`.
fn parse_class(chars: &[char], start: usize, pattern: &str) -> (Atom, usize) {
    let mut i = start + 1;
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut include: Vec<(char, char)> = Vec::new();
    let mut exclude: Vec<(char, char)> = Vec::new();
    loop {
        match chars.get(i) {
            None => panic!("unclosed character class in pattern {pattern:?}"),
            Some(']') => {
                i += 1;
                break;
            }
            Some('&') if chars.get(i + 1) == Some(&'&') => {
                // `&&[^...]` subtraction (the only intersection form used).
                assert_eq!(
                    (chars.get(i + 2), chars.get(i + 3)),
                    (Some(&'['), Some(&'^')),
                    "only `&&[^...]` intersection is supported in {pattern:?}"
                );
                let (inner, next) = parse_class(chars, i + 2, pattern);
                match inner {
                    Atom::Class {
                        negated: true,
                        include: inner_include,
                        ..
                    } => exclude.extend(inner_include),
                    _ => unreachable!("inner class must be negated"),
                }
                i = next;
            }
            Some(&c) => {
                let lo = if c == '\\' {
                    i += 1;
                    *chars.get(i).expect("dangling escape in class")
                } else {
                    c
                };
                i += 1;
                // Range `a-z` when a `-` is followed by a non-`]`.
                if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
                    let mut hi = chars[i + 1];
                    if hi == '\\' {
                        hi = *chars.get(i + 2).expect("dangling escape in class");
                        i += 1;
                    }
                    i += 2;
                    include.push((lo, hi));
                } else {
                    include.push((lo, lo));
                }
            }
        }
    }
    (
        Atom::Class {
            negated,
            include,
            exclude,
        },
        i,
    )
}

fn in_ranges(c: char, ranges: &[(char, char)]) -> bool {
    ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi)
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyPrintable => {
            let (lo, hi) = PRINTABLE_RANGES[rng.below(PRINTABLE_RANGES.len())];
            for _ in 0..64 {
                let code = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
            }
            ' '
        }
        Atom::Class {
            negated,
            include,
            exclude,
        } => {
            if *negated {
                // Sample printable chars until one misses `include`.
                for _ in 0..256 {
                    let c = sample_atom(&Atom::AnyPrintable, rng);
                    if !in_ranges(c, include) {
                        return c;
                    }
                }
                panic!("could not satisfy negated class");
            }
            let total: u64 = include
                .iter()
                .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                .sum();
            assert!(total > 0, "empty character class");
            for _ in 0..256 {
                let mut pick = rng.next_u64() % total;
                for &(lo, hi) in include {
                    let size = u64::from(hi as u32 - lo as u32) + 1;
                    if pick < size {
                        if let Some(c) = char::from_u32(lo as u32 + pick as u32) {
                            if !in_ranges(c, exclude) {
                                return c;
                            }
                        }
                        break;
                    }
                    pick -= size;
                }
            }
            panic!("could not satisfy character class (all excluded?)");
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, quant) in &atoms {
        let count = rng.between(quant.lo, quant.hi.max(quant.lo));
        for _ in 0..count {
            out.push(sample_atom(atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn class_with_subtraction_excludes_specials() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~&&[^<&>\"']]{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(!s.contains(['<', '&', '>', '"', '\'']));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn simple_class_and_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z ]{0,6}", &mut r);
            assert!(s.chars().count() <= 6);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_star_produces_no_controls() {
        let mut r = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = generate("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "expected some non-ASCII coverage");
    }

    #[test]
    fn literals_and_counts() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("a{3}", &mut r), "aaa");
    }
}
