//! `Option` strategies.

use crate::{Strategy, TestRng};

/// Strategy producing `Option<T>` (None with probability 1/4).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Wraps a strategy's values in `Option`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
