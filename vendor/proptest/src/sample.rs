//! Sampling strategies.

use crate::{Strategy, TestRng};
use std::fmt::Debug;

/// Strategy picking uniformly from a fixed set of values.
#[derive(Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len())].clone()
    }
}

/// Picks uniformly from `values` (must be non-empty).
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires a non-empty vec");
    Select { values }
}
