//! `any::<T>()` strategies for primitive types.

use crate::{Strategy, TestRng};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
