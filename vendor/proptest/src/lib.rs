//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's
//! property-style tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * `&str` regex-pattern strategies for the pattern shapes that appear
//!   in the tests (`\PC*`, char classes with `&&[^…]` subtraction and
//!   `{lo,hi}` repetition — see [`pattern`]);
//! * [`collection::vec`], [`sample::select`], [`option::of`],
//!   [`arbitrary::any`], tuple strategies, and [`prop_oneof!`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is **no shrinking**: a failing case is reported with its seed
//! and case index so it can be replayed deterministically.

use std::fmt::Debug;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod pattern;
pub mod sample;

pub use arbitrary::any;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// Uniform draw in `lo..=hi`.
    pub fn between(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value produced.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `&str` values act as regex-like pattern strategies producing `String`s.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as i128) + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Union of same-valued strategies; used by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union from boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len());
        self.arms[pick].generate(rng)
    }
}

/// Runner configuration for [`proptest!`] blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Chooses uniformly among strategy arms (all producing the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs its body over many
/// generated cases. Failures report the seed and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed: u64 = 0xC0FF_EE00_D15E_A5E5;
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    let run = || {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed (seed {seed:#x})",
                            config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}
