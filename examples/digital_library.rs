//! The digital-library scenario: one markable attribute per plug-in type
//! (integer pages, decimal price, text abstract, base64 cover image),
//! demonstrating the plug-in architecture of the paper's Fig. 4 and the
//! imperceptibility of image marks (PSNR).
//!
//! ```text
//! cargo run -p wmx-examples --bin digital_library
//! ```

use wmx_core::{detect, embed, measure_usability, DetectionInput, UnitTag, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::image::GrayImage;
use wmx_data::library::{generate, LibraryConfig};
use wmx_examples::{banner, print_detection, print_embed_report, print_usability};

fn main() {
    banner("Digital library: every plug-in type at once");
    let dataset = generate(&LibraryConfig {
        records: 200,
        image_size: 24,
        seed: 590,
        gamma: 2,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("library-secret");
    let watermark = Watermark::from_message("© Digital Library", 24);

    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds");
    print_embed_report(&report);

    // Breakdown by plug-in type.
    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    for q in &report.queries {
        *by_type
            .entry(match q.mark {
                wmx_core::MarkKind::Value(dt) => dt.to_string(),
                wmx_core::MarkKind::SiblingOrder => "sibling-order".to_string(),
            })
            .or_default() += 1;
    }
    println!("marked units by type: {by_type:?}");

    // Image imperceptibility: PSNR between original and marked covers.
    let item = dataset.binding.entity("item").unwrap();
    let mut worst_psnr = f64::INFINITY;
    let mut marked_covers = 0usize;
    let marked_instances = item.instances(&marked);
    for (orig_inst, marked_inst) in item.instances(&original).iter().zip(&marked_instances) {
        let a = item.attr_value(&original, orig_inst, "cover").unwrap();
        let b = item.attr_value(&marked, marked_inst, "cover").unwrap();
        if a != b {
            marked_covers += 1;
            let ia = GrayImage::from_payload(&a).unwrap();
            let ib = GrayImage::from_payload(&b).unwrap();
            worst_psnr = worst_psnr.min(ia.psnr(&ib).unwrap());
        }
    }
    println!(
        "cover images touched: {marked_covers}; worst-case PSNR {:.1} dB (LSB-only marks)",
        worst_psnr
    );

    let usability = measure_usability(
        &original,
        &dataset.binding,
        &marked,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .unwrap();
    print_usability("after embedding", &usability);

    let detection = detect(
        &marked,
        &DetectionInput {
            queries: &report.queries,
            key,
            watermark,
            threshold: 0.85,
            mapping: None,
        },
    );
    print_detection("library", &detection);

    // Sanity: every unit here is key-identified (no FDs declared).
    assert!(report.queries.iter().all(|q| q.logical.is_some()));
    let _ = UnitTag::KeyAttr;
    assert!(detection.detected);
    println!("\ndigital library scenario OK");
}
