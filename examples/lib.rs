//! Shared pretty-printing helpers for the example binaries.

use wmx_core::{DetectionReport, EmbedReport, UsabilityReport};

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an embedding report in a compact human form.
pub fn print_embed_report(report: &EmbedReport) {
    println!(
        "embedding: {} units, {} selected (1/γ), {} marked ({} nodes), utilization {:.1}%",
        report.total_units,
        report.selected_units,
        report.marked_units,
        report.marked_nodes,
        100.0 * report.capacity_utilization()
    );
}

/// Prints a detection report in a compact human form.
pub fn print_detection(label: &str, report: &DetectionReport) {
    println!(
        "detection [{label}]: {} — matched {}/{} voted bits ({:.0}%), coverage {:.0}%, p-value {:.2e}, queries located {}/{}{}",
        if report.detected { "DETECTED" } else { "not detected" },
        report.matched_bits,
        report.voted_bits,
        100.0 * report.match_fraction(),
        100.0 * report.coverage(),
        report.p_value,
        report.located_queries,
        report.total_queries,
        if report.unrewritable_queries > 0 {
            format!(", {} unrewritable", report.unrewritable_queries)
        } else {
            String::new()
        }
    );
}

/// Prints a usability report.
pub fn print_usability(label: &str, report: &UsabilityReport) {
    print!("usability [{label}]: {:.1}% (", 100.0 * report.overall());
    for (i, t) in report.per_template.iter().enumerate() {
        if i > 0 {
            print!(", ");
        }
        print!("{} {:.0}%", t.template, 100.0 * t.fraction());
    }
    println!(")");
}
