//! The paper's §1 motivating scenario: a job agent watermarks his
//! advertisements; a rival site steals a subset and lightly alters it;
//! the agent proves the theft.
//!
//! ```text
//! cargo run -p wmx-examples --bin job_listings
//! ```

use wmx_attacks::{AlterationAttack, ReductionAttack, ShuffleAttack};
use wmx_core::{detect, embed, measure_usability, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::jobs::{generate, JobsConfig};
use wmx_examples::{banner, print_detection, print_embed_report, print_usability};

fn main() {
    banner("Job agent scenario");
    let dataset = generate(&JobsConfig {
        records: 500,
        companies: 12,
        seed: 1318,
        gamma: 3,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("job-agent-secret");
    let watermark = Watermark::from_message("© JobAgent.example", 24);

    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds");
    print_embed_report(&report);
    let usability = measure_usability(
        &original,
        &dataset.binding,
        &marked,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .unwrap();
    print_usability("marked site", &usability);

    // The rival copies the listings, keeps 60%, shuffles them, and
    // perturbs 10% of the salaries to cover his tracks.
    banner("Rival site: copy 60%, shuffle, perturb 10% of salaries");
    let mut stolen = marked.clone();
    ReductionAttack::new(0.6, "/jobs/listing", 77).apply(&mut stolen);
    ShuffleAttack::new(78).apply(&mut stolen);
    AlterationAttack::values(0.10, vec!["//listing/salary".into()], 79).apply(&mut stolen);

    let usability = measure_usability(
        &original,
        &dataset.binding,
        &stolen,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .unwrap();
    print_usability("stolen copy vs original", &usability);

    let detection = detect(
        &stolen,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.8,
            mapping: None,
        },
    );
    print_detection("stolen copy", &detection);
    assert!(
        detection.detected,
        "the watermark must survive subsetting + light alteration"
    );

    // An innocent third site with its own (unmarked) listings must not
    // trigger detection.
    banner("Innocent site (different seed, never marked)");
    let innocent = generate(&JobsConfig {
        records: 500,
        companies: 12,
        seed: 9999,
        gamma: 3,
    })
    .doc;
    let innocent_detection = detect(
        &innocent,
        &DetectionInput {
            queries: &report.queries,
            key,
            watermark,
            threshold: 0.8,
            mapping: None,
        },
    );
    print_detection("innocent site", &innocent_detection);
    assert!(!innocent_detection.detected, "no false accusation");

    println!("\njob agent scenario OK");
}
