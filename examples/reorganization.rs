//! The paper's Fig. 1 / Fig. 2 scenario: the adversary reorganizes
//! db1.xml into db2.xml (books regrouped under publisher/author); the
//! owner rewrites the identity queries through the schema mapping and
//! still recovers the watermark. The value-identified baseline cannot.
//!
//! ```text
//! cargo run -p wmx-examples --bin reorganization
//! ```

use wmx_attacks::{ReorganizationAttack, ShuffleAttack};
use wmx_core::baseline::{baseline_detect, baseline_embed, BaselineConfig, BaselinePath};
use wmx_core::{detect, embed, measure_usability, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_examples::{banner, print_detection, print_embed_report, print_usability};
use wmx_rewrite::binding::{AttrBinding, EntityBinding};
use wmx_rewrite::transform::{FieldPlacement, Layout};
use wmx_rewrite::{SchemaBinding, SchemaMapping};
use wmx_schema::DataType;

/// The db2-style binding for the reorganized publications data. As in
/// the paper's Fig. 1b the adversary renames tags while preserving the
/// information: titles become `name` attributes and the year is kept as
/// a `<published>` child (dropping it entirely would destroy the
/// "published-when" usability the adversary wants to keep).
fn db2_binding() -> SchemaBinding {
    SchemaBinding::new(
        "publications-db2",
        vec![EntityBinding::new(
            "book",
            "/db/publisher/author/book",
            "title",
            vec![
                ("title", AttrBinding::Attribute("name".into())),
                ("year", AttrBinding::ChildText("published".into())),
                ("author", AttrBinding::Path("../@name".into())),
                ("publisher", AttrBinding::Path("../../@name".into())),
            ],
        )
        .expect("static binding")],
    )
}

/// The adversary's target layout: publisher → author → book, with every
/// tag renamed (`title` → `@name`, `year` → `<published>`).
fn db2_layout() -> Layout {
    Layout::GroupBy {
        attr: "publisher".into(),
        element: "publisher".into(),
        label: FieldPlacement::Attribute("name".into()),
        inner: Box::new(Layout::GroupBy {
            attr: "author".into(),
            element: "author".into(),
            label: FieldPlacement::Attribute("name".into()),
            inner: Box::new(Layout::Flat {
                record_element: "book".into(),
                fields: vec![
                    ("title".into(), FieldPlacement::Attribute("name".into())),
                    ("year".into(), FieldPlacement::ChildText("published".into())),
                ],
            }),
        }),
    }
}

fn main() {
    banner("Re-organization attack (Fig. 1: db1.xml -> db2.xml)");
    let dataset = generate(&PublicationsConfig {
        records: 240,
        editors: 8,
        seed: 2005,
        gamma: 2,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("fig1-owner");
    let watermark = Watermark::from_message("© WmXML owner", 16);

    // WmXML embedding.
    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds");
    print_embed_report(&report);

    // Baseline embedding on a second copy of the data.
    let mut baseline_marked = original.clone();
    let baseline_report = baseline_embed(
        &mut baseline_marked,
        &BaselineConfig {
            paths: vec![BaselinePath {
                path: "//year".into(),
                data_type: DataType::Integer,
            }],
            gamma: 2,
        },
        &key,
        &watermark,
    )
    .expect("baseline embedding succeeds");
    println!(
        "baseline embedding: {} nodes collapsed into {} value-identified units ({:.0}% bandwidth lost)",
        baseline_report.total_nodes,
        baseline_report.total_units,
        100.0 * baseline_report.collapse_fraction()
    );

    // The adversary reorganizes both copies and shuffles siblings.
    banner("Adversary reorganizes the schema and shuffles siblings");
    let attack = ReorganizationAttack::new("book", "db", db2_layout());
    let mut reorganized = attack.apply(&marked, &dataset.binding).expect("reorganize");
    ShuffleAttack::new(42).apply(&mut reorganized);
    let mut baseline_reorganized = attack
        .apply(&baseline_marked, &dataset.binding)
        .expect("reorganize");
    ShuffleAttack::new(42).apply(&mut baseline_reorganized);

    // Usability is preserved (the whole point of the attack).
    let usability = measure_usability(
        &original,
        &dataset.binding,
        &reorganized,
        &db2_binding(),
        &[
            wmx_core::QueryTemplate::new("who-wrote", "book", "author"),
            wmx_core::QueryTemplate::new("published-when", "book", "year"),
            wmx_core::QueryTemplate::new("published-by", "book", "publisher"),
        ],
        &dataset.config,
    )
    .expect("usability measurable");
    print_usability("after reorganization", &usability);

    // Detection WITH query rewriting (the paper's Fig. 2 pipeline).
    let mapping = SchemaMapping::new(dataset.binding.clone(), db2_binding())
        .expect("bindings share the logical model");
    let with_rewriting = detect(
        &reorganized,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.8,
            mapping: Some(&mapping),
        },
    );
    print_detection("WmXML + rewriting", &with_rewriting);

    // Detection WITHOUT rewriting (ablation).
    let without_rewriting = detect(
        &reorganized,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.8,
            mapping: None,
        },
    );
    print_detection("WmXML, no rewriting", &without_rewriting);

    // Baseline detection (physical queries, no rewriting possible).
    let baseline_detection = baseline_detect(
        &baseline_reorganized,
        &baseline_report.queries,
        &key,
        &watermark,
        0.8,
    );
    println!(
        "detection [baseline]: {} — located {}/{} queries",
        if baseline_detection.detected {
            "DETECTED"
        } else {
            "not detected"
        },
        baseline_detection.located_queries,
        baseline_detection.total_queries
    );

    assert!(with_rewriting.detected, "rewriting must recover the mark");
    assert!(
        !without_rewriting.detected && !baseline_detection.detected,
        "physical identification must fail after reorganization"
    );
    println!("\nreorganization scenario OK");
}
