//! Quickstart: watermark an XML document and detect the mark again.
//!
//! ```text
//! cargo run -p wmx-examples --bin quickstart
//! ```

use wmx_core::{detect, embed, measure_usability, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_examples::{banner, print_detection, print_embed_report, print_usability};

fn main() {
    banner("WmXML quickstart");

    // 1. Data + semantics: a publications database like the paper's
    //    db1.xml, with `title` as the key of `book` and the FD
    //    `editor → publisher`.
    let dataset = generate(&PublicationsConfig {
        records: 300,
        editors: 10,
        seed: 2005,
        gamma: 3,
    });
    let original = dataset.doc.clone();
    println!(
        "dataset: {} ({} book records, {} templates, {} FDs)",
        dataset.name,
        dataset
            .binding
            .entity("book")
            .unwrap()
            .instances(&original)
            .len(),
        dataset.templates.len(),
        dataset.fds.len()
    );

    // 2. The owner's inputs: a secret key and a watermark.
    let key = SecretKey::from_passphrase("vldb-2005-demo-key");
    let watermark = Watermark::from_message("© 2005 WmXML demo owner", 32);
    println!("watermark ({} bits): {watermark}", watermark.len());

    // 3. Embed.
    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds on valid data");
    print_embed_report(&report);

    // 4. Usability after embedding (the imperceptibility claim).
    let usability = measure_usability(
        &original,
        &dataset.binding,
        &marked,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .expect("usability measurable");
    print_usability("after embedding", &usability);

    // 5. Detect with the right key…
    let detection = detect(
        &marked,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.85,
            mapping: None,
        },
    );
    print_detection("correct key", &detection);

    // …and with a wrong key (must fail).
    let wrong = detect(
        &marked,
        &DetectionInput {
            queries: &report.queries,
            key: SecretKey::from_passphrase("not-the-key"),
            watermark,
            threshold: 0.85,
            mapping: None,
        },
    );
    print_detection("wrong key", &wrong);

    assert!(detection.detected && !wrong.detected);
    println!("\nquickstart OK");
}
