//! Attack lab: run all four demo attacks (§4) at increasing intensity
//! against a watermarked publications database and print the
//! detection/usability trade-off table the demonstration shows live.
//!
//! ```text
//! cargo run -p wmx-examples --bin attack_lab
//! ```

use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{AlterationAttack, ReductionAttack, RedundancyRemovalAttack, ShuffleAttack};
use wmx_core::{detect, embed, measure_usability, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_examples::banner;
use wmx_xml::Document;

struct Row {
    attack: String,
    intensity: String,
    detected: bool,
    match_pct: f64,
    usability_pct: f64,
}

fn main() {
    let dataset = generate(&PublicationsConfig {
        records: 400,
        editors: 10,
        seed: 2005,
        gamma: 2,
    });
    let original = dataset.doc.clone();
    let key = SecretKey::from_passphrase("attack-lab");
    let watermark = Watermark::from_message("© attack lab", 20);

    let mut marked = original.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &watermark,
    )
    .expect("embedding succeeds");

    let assess = |doc: &Document, attack: &str, intensity: String| -> Row {
        let detection = detect(
            doc,
            &DetectionInput {
                queries: &report.queries,
                key: key.clone(),
                watermark: watermark.clone(),
                threshold: 0.8,
                mapping: None,
            },
        );
        let usability = measure_usability(
            &original,
            &dataset.binding,
            doc,
            &dataset.binding,
            &dataset.templates,
            &dataset.config,
        )
        .map(|u| u.overall())
        .unwrap_or(0.0);
        Row {
            attack: attack.to_string(),
            intensity,
            detected: detection.detected,
            match_pct: 100.0 * detection.match_fraction(),
            usability_pct: 100.0 * usability,
        }
    };

    let mut rows = Vec::new();
    rows.push(assess(&marked, "(none)", "-".into()));

    banner("Attack A: alteration (perturb years beyond tolerance)");
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut attacked = marked.clone();
        AlterationAttack::values(alpha, vec!["//book/year".into()], 7).apply(&mut attacked);
        rows.push(assess(&attacked, "alteration", format!("α={alpha:.1}")));
    }

    banner("Attack B: reduction (keep a subset of books)");
    for keep in [0.8, 0.5, 0.3, 0.1, 0.05] {
        let mut attacked = marked.clone();
        ReductionAttack::new(keep, "/db/book", 11).apply(&mut attacked);
        rows.push(assess(&attacked, "reduction", format!("keep={keep:.2}")));
    }

    banner("Attack C: reorder siblings (mild re-organization)");
    let mut attacked = marked.clone();
    ShuffleAttack::new(13).apply(&mut attacked);
    rows.push(assess(&attacked, "shuffle", "full".into()));

    banner("Attack D: redundancy removal (unify FD duplicates)");
    // Against WmXML: FD groups are marked consistently, so the attack
    // finds nothing to unify.
    let mut attacked = marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);
    rows.push(assess(
        &attacked,
        "redund-rm vs WmXML",
        format!("{rewritten} dupes"),
    ));

    // Ablation: the FD-unaware variant marks duplicates independently;
    // the same attack erases the divergent (minority) marks. Detection
    // of publisher marks then collapses while usability stays intact —
    // the failure mode the paper's challenge (C) predicts. We only mark
    // the FD-dependent attribute here to isolate the effect.
    let ablation_config =
        wmx_core::EncoderConfig::new(2, vec![wmx_core::MarkableAttr::text("book", "publisher")])
            .without_fd_groups();
    let mut ablation_marked = original.clone();
    let ablation_report = embed(
        &mut ablation_marked,
        &dataset.binding,
        &dataset.fds,
        &ablation_config,
        &key,
        &watermark,
    )
    .expect("ablation embedding succeeds");
    let mut ablation_attacked = ablation_marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut ablation_attacked);
    let ablation_detection = detect(
        &ablation_attacked,
        &DetectionInput {
            queries: &ablation_report.queries,
            key: key.clone(),
            watermark: watermark.clone(),
            threshold: 0.8,
            mapping: None,
        },
    );
    let ablation_usability = measure_usability(
        &original,
        &dataset.binding,
        &ablation_attacked,
        &dataset.binding,
        &dataset.templates,
        &ablation_config,
    )
    .map(|u| u.overall())
    .unwrap_or(0.0);
    rows.push(Row {
        attack: "redund-rm vs FD-less".into(),
        intensity: format!("{rewritten} dupes"),
        detected: ablation_detection.detected,
        match_pct: 100.0 * ablation_detection.match_fraction(),
        usability_pct: 100.0 * ablation_usability,
    });

    banner("Results");
    println!(
        "{:<20} {:<12} {:<10} {:>9} {:>11}",
        "attack", "intensity", "detected", "match %", "usability %"
    );
    for r in &rows {
        println!(
            "{:<20} {:<12} {:<10} {:>8.1} {:>10.1}",
            r.attack,
            r.intensity,
            if r.detected { "yes" } else { "NO" },
            r.match_pct,
            r.usability_pct
        );
    }

    // The demo's claim: attacks that leave the data usable leave the
    // watermark detectable — for WmXML. The FD-unaware ablation row is
    // the predicted counter-example and is exempted.
    for r in &rows {
        if r.usability_pct >= 90.0 && r.attack != "redund-rm vs FD-less" {
            assert!(
                r.detected,
                "{} ({}) kept usability but killed the mark",
                r.attack, r.intensity
            );
        }
    }
    println!("\nattack lab OK — no usable-but-unmarked outcome observed for WmXML");
}
