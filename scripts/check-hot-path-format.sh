#!/usr/bin/env sh
# Hot-path allocation guard: the embed/detect loops in wmx-core must
# stay symbol-native. Unit identity is a compact UnitKey fed to the PRF
# incrementally; textual ids are rendered only by UnitKey::display for
# marked units. A `format!` creeping back into the non-test region of
# the encoder/decoder would put a per-unit allocation on the hottest
# loop, so CI denies it here (tests below `#[cfg(test)]` are exempt).
set -eu

cd "$(dirname "$0")/.."
status=0
for f in crates/core/src/encoder.rs crates/core/src/decoder.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} /format!/{print FILENAME ":" FNR ": " $0}' "$f")
    if [ -n "$hits" ]; then
        echo "error: format! on the embed/detect hot path (use UnitKey/display):" >&2
        printf '%s\n' "$hits" >&2
        status=1
    fi
done
if [ "$status" -eq 0 ]; then
    echo "hot-path format! guard: clean"
fi
exit $status
