#!/usr/bin/env sh
# Hot-path allocation guard: the embed/detect loops in wmx-core and the
# per-record loop in wmx-stream must stay symbol-native. Unit identity
# is a compact UnitKey fed to the PRF incrementally; textual ids are
# rendered only by UnitKey::display for marked units; record
# mini-documents and wrapper tags are assembled with push_str into
# pre-sized buffers. A `format!` creeping back into the non-test region
# of these files would put a per-unit (or per-record) allocation on the
# hottest loop, so CI denies it here (tests below `#[cfg(test)]` are
# exempt). The streaming engine additionally must never parse a query
# per record — every access step is compiled once into the cached
# SelectionPlan — so `Query::compile` is denied there too.
set -eu

cd "$(dirname "$0")/.."
status=0
for f in crates/core/src/encoder.rs crates/core/src/decoder.rs crates/stream/src/engine.rs \
         crates/stream/src/report.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} /format!/{print FILENAME ":" FNR ": " $0}' "$f")
    if [ -n "$hits" ]; then
        echo "error: format! on the embed/detect hot path (use UnitKey/display or push_str):" >&2
        printf '%s\n' "$hits" >&2
        status=1
    fi
done
# The forensic vote path extends the same contract: per-unit tallies
# are accumulated against the interned UnitKey (ForensicTallies::observe
# in the decode loops); textual unit ids are rendered exactly once, by
# ForensicsReport::from_tallies. A `.display(` creeping into the
# non-test region of the detect-side files would put a per-unit string
# render on every vote, so it is denied here. forensics.rs hosts the
# sanctioned render pass and engine.rs's embed path renders ids only
# for marked units (StoredQuery), so both stay exempt.
for f in crates/core/src/decoder.rs crates/stream/src/report.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit}
        /^[[:space:]]*\/\//{next}
        /\.display\(/{print FILENAME ":" FNR ": " $0}' "$f")
    if [ -n "$hits" ]; then
        echo "error: per-vote unit-id rendering on the forensic tally path (render once via ForensicsReport::from_tallies):" >&2
        printf '%s\n' "$hits" >&2
        status=1
    fi
done
hits=$(awk '/#\[cfg\(test\)\]/{exit} /Query::compile/{print FILENAME ":" FNR ": " $0}' crates/stream/src/engine.rs)
if [ -n "$hits" ]; then
    echo "error: per-record query compilation in the streaming engine (use the cached SelectionPlan):" >&2
    printf '%s\n' "$hits" >&2
    status=1
fi
# The telemetry record path carries the same contract one step further:
# a Counter::inc/Histogram::record sits inside the per-record loops, so
# its module must stay entirely lock-free and allocation-free — no
# Mutex/RwLock, no String/Vec/Box construction, no formatting. Comment
# lines are exempt (the module documents exactly this rule); tests
# below #[cfg(test)] are exempt as everywhere else.
hits=$(awk '/#\[cfg\(test\)\]/{exit}
    /^[[:space:]]*\/\//{next}
    /Mutex|RwLock|format!|String|Vec<|vec!|Box::|to_string|to_owned/{print FILENAME ":" FNR ": " $0}' \
    crates/telemetry/src/metrics.rs)
if [ -n "$hits" ]; then
    echo "error: lock or allocation on the telemetry record path (metrics.rs must stay Relaxed-atomics-only):" >&2
    printf '%s\n' "$hits" >&2
    status=1
fi
# The byte-scanning substrate contract: the lexer and escaper scan raw
# bytes (SWAR word loops in scan.rs) and only decode UTF-8 at validation
# boundaries through the helpers scan.rs exposes. A `chars()` or
# `char_indices()` iteration creeping back into the non-test region of
# lexer.rs or escape.rs would put a per-character decode on the hottest
# loop, so CI denies it here. Comment lines and tests below
# #[cfg(test)] are exempt; char-decoding helpers live in scan.rs, which
# is deliberately not covered.
for f in crates/xml/src/lexer.rs crates/xml/src/escape.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit}
        /^[[:space:]]*\/\//{next}
        /\.chars\(\)|\.char_indices\(\)/{print FILENAME ":" FNR ": " $0}' "$f")
    if [ -n "$hits" ]; then
        echo "error: per-char decoding on the byte-scanning hot path (use the scan.rs helpers):" >&2
        printf '%s\n' "$hits" >&2
        status=1
    fi
done
if [ "$status" -eq 0 ]; then
    echo "hot-path format! guard: clean"
fi
exit $status
