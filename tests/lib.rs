//! Shell crate for the cross-crate integration tests in `tests/`.
//!
//! The library target is intentionally empty: all content lives in the
//! integration-test binaries (`tests/*.rs`), which exercise the public
//! APIs of every `wmx-*` crate together.
