//! Compiled-plan ≡ legacy-enumeration equivalence suite: the
//! [`wmx_core::SelectionPlan`] layer (pre-resolved symbols, pre-compiled
//! access steps, cached per schema) must make bit-for-bit the same
//! decisions as interpreting the schema per call with
//! [`wmx_core::enumerate_units`], and batch detection must locate
//! exactly the nodes per-query evaluation locates.
//!
//! * Over generated corpora and adversarial proptest documents, plan
//!   execution yields the same unit sequence — same keys, same nodes,
//!   same marks — and the same PRF byte stream (selection, bit index,
//!   nonce, whitening) as the legacy path.
//! * A plan-cache hit returns the very same compiled plan a cold
//!   compile produces, and reusing it changes nothing.
//! * Batched stored-query evaluation ([`wmx_xpath::batch_select`])
//!   returns the same node lists as one-query-at-a-time evaluation.
//! * End to end, DOM detection and streaming detection — both running
//!   on compiled plans now — tally identical votes and verdicts.

use proptest::prelude::*;
use wmx_core::{
    detect, embed, enumerate_units, DetectionInput, EncoderConfig, MarkableAttr, PlanCache,
    SelectionPlan, SelectionTable, Watermark,
};
use wmx_crypto::{Prf, SecretKey};
use wmx_data::{jobs, library, publications, Dataset};
use wmx_rewrite::binding::{AttrBinding, EntityBinding};
use wmx_rewrite::SchemaBinding;
use wmx_stream::{stream_detect, StreamContext};
use wmx_xml::Document;
use wmx_xpath::{batch_select, Evaluator, Query};

fn datasets() -> Vec<Dataset> {
    vec![
        publications::generate(&publications::PublicationsConfig {
            records: 150,
            editors: 6,
            seed: 81,
            gamma: 3,
        }),
        jobs::generate(&jobs::JobsConfig {
            records: 150,
            companies: 5,
            seed: 82,
            gamma: 3,
        }),
        library::generate(&library::LibraryConfig {
            records: 80,
            image_size: 12,
            seed: 83,
            gamma: 2,
        }),
    ]
}

/// Asserts plan execution over `doc` reproduces the legacy enumeration
/// exactly: unit count, per-unit id text, node lists, mark kinds, and
/// the full PRF decision stream.
fn assert_plan_matches_legacy(
    dataset_name: &str,
    doc: &Document,
    binding: &SchemaBinding,
    fds: &[wmx_schema::Fd],
    config: &EncoderConfig,
) {
    let table = SelectionTable::build(config, fds);
    let legacy = enumerate_units(doc, binding, fds, config, &table).expect("legacy enumerates");
    let plan = SelectionPlan::compile(binding, fds, config).expect("plan compiles");
    let planned = plan.execute(doc);
    assert_eq!(
        legacy.len(),
        planned.len(),
        "unit count diverged on {dataset_name}"
    );
    let prf = Prf::new(SecretKey::from_passphrase("plan-eq"));
    for (l, p) in legacy.iter().zip(&planned) {
        // Same identity, rendered through each side's own table.
        assert_eq!(
            l.key.display(&table),
            p.key.display(plan.table()),
            "unit id diverged on {dataset_name}"
        );
        assert_eq!(l.nodes, p.nodes, "node list diverged on {dataset_name}");
        assert_eq!(l.mark, p.mark, "mark kind diverged on {dataset_name}");
        // Same PRF byte stream: every decision the marker derives from
        // the id must be identical between the two feeds.
        for gamma in [1u32, 2, 3, 7, 100] {
            assert_eq!(
                prf.is_selected(&l.key.id(&table), gamma),
                prf.is_selected(&p.key.id(plan.table()), gamma),
                "selection diverged on {dataset_name} at gamma {gamma}"
            );
        }
        for wm_len in [1usize, 8, 24] {
            assert_eq!(
                prf.bit_index(&l.key.id(&table), wm_len),
                prf.bit_index(&p.key.id(plan.table()), wm_len),
                "bit index diverged on {dataset_name}"
            );
        }
        assert_eq!(
            prf.value_nonce(&l.key.id(&table)),
            prf.value_nonce(&p.key.id(plan.table())),
            "nonce diverged on {dataset_name}"
        );
        assert_eq!(
            prf.whiten_bit(&l.key.id(&table)),
            prf.whiten_bit(&p.key.id(plan.table())),
            "whitening diverged on {dataset_name}"
        );
    }
    assert!(
        plan.matches_legacy(doc, binding, fds, config),
        "matches_legacy rejected {dataset_name}"
    );
}

/// Every corpus: compiled plans reproduce the legacy enumeration and
/// PRF stream exactly, with and without FD groups.
#[test]
fn corpus_plans_match_legacy_enumeration() {
    for dataset in datasets() {
        assert!(
            !SelectionPlan::compile(&dataset.binding, &dataset.fds, &dataset.config)
                .expect("plan compiles")
                .execute(&dataset.doc)
                .is_empty(),
            "corpus {} has units",
            dataset.name
        );
        assert_plan_matches_legacy(
            &dataset.name,
            &dataset.doc,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
        );
        // The FD-free configuration exercises the pure structural +
        // markable phases.
        let no_fd = dataset.config.clone().without_fd_groups();
        assert_plan_matches_legacy(
            &dataset.name,
            &dataset.doc,
            &dataset.binding,
            &dataset.fds,
            &no_fd,
        );
    }
}

/// A cache hit returns the very same `Arc` the cold compile inserted,
/// counts as a hit, and executes identically to an uncached compile.
#[test]
fn cache_hit_equals_cold_compile() {
    let dataset = &datasets()[0];
    let cache = PlanCache::new();
    let first = cache
        .get_or_compile(&dataset.binding, &dataset.fds, &dataset.config)
        .expect("cold compile");
    let second = cache
        .get_or_compile(&dataset.binding, &dataset.fds, &dataset.config)
        .expect("cache hit");
    assert!(
        std::sync::Arc::ptr_eq(&first, &second),
        "hit must return the cached plan"
    );
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 1);

    let cold = SelectionPlan::compile(&dataset.binding, &dataset.fds, &dataset.config)
        .expect("uncached compile");
    assert_eq!(cold.schema_hash(), first.schema_hash());
    let from_cache = first.execute(&dataset.doc);
    let from_cold = cold.execute(&dataset.doc);
    assert_eq!(from_cache.len(), from_cold.len());
    for (a, b) in from_cache.iter().zip(&from_cold) {
        assert_eq!(a.key.display(first.table()), b.key.display(cold.table()));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.mark, b.mark);
    }
}

/// Batched evaluation of the safeguarded query set locates exactly the
/// nodes one-query-at-a-time evaluation locates, in the same order.
#[test]
fn batch_select_matches_per_query_evaluation() {
    for dataset in datasets() {
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &SecretKey::from_passphrase("plan-eq-batch"),
            &Watermark::from_message("© batch", 16),
        )
        .expect("embed succeeds");
        assert!(!report.queries.is_empty());
        let compiled: Vec<Query> = report
            .queries
            .iter()
            .map(|s| Query::compile(&s.xpath).expect("stored query compiles"))
            .collect();
        let evaluator = Evaluator::new(&marked);
        let batched = batch_select(&evaluator, &compiled);
        assert_eq!(batched.len(), compiled.len());
        let mut answered = 0usize;
        for (query, batch) in compiled.iter().zip(&batched) {
            let direct = query.select_with(&evaluator);
            if let Some(nodes) = batch {
                answered += 1;
                assert_eq!(
                    nodes, &direct,
                    "batched nodes diverged on corpus {} for {}",
                    dataset.name, query
                );
            }
            assert!(
                !direct.is_empty(),
                "stored query must locate its unit on the unattacked corpus"
            );
        }
        assert!(
            answered > 0,
            "identity queries of corpus {} must be batchable",
            dataset.name
        );
    }
}

/// End to end through the compiled plans on both engines: DOM detection
/// and streaming detection tally identical votes and verdicts.
#[test]
fn dom_and_stream_votes_agree_via_plans() {
    for dataset in datasets() {
        let key = SecretKey::from_passphrase("plan-eq-votes");
        let wm = Watermark::from_message("© plan votes", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .expect("embed succeeds");
        let dom = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key: key.clone(),
                watermark: wm.clone(),
                threshold: 0.85,
                mapping: None,
            },
        );
        let streamed = stream_detect(
            wmx_xml::to_string(&marked).as_bytes(),
            StreamContext {
                binding: &dataset.binding,
                fds: &dataset.fds,
                config: &dataset.config,
            },
            &key,
            &wm,
            0.85,
        )
        .expect("stream detect runs");
        assert_eq!(
            dom.bit_votes, streamed.report.bit_votes,
            "vote tallies diverged on corpus {}",
            dataset.name
        );
        assert_eq!(dom.vote_totals(), streamed.report.vote_totals());
        assert_eq!(dom.detected, streamed.report.detected);
        assert!(dom.detected, "corpus {} must detect", dataset.name);
    }
}

/// Builds `<db>` with one `<book>` per (title, year) pair, attaching the
/// values as raw DOM text so arbitrary characters survive verbatim.
fn doc_with_titles(titles: &[String]) -> Document {
    let mut doc = Document::new();
    let db = doc.create_element("db").expect("arena fits");
    let doc_node = doc.document_node();
    doc.append_child(doc_node, db);
    for (i, title) in titles.iter().enumerate() {
        let book = doc.create_element("book").expect("arena fits");
        doc.append_child(db, book);
        let t = doc.create_element("title").expect("arena fits");
        doc.append_child(book, t);
        doc.set_text_content(t, title.clone()).expect("arena fits");
        let y = doc.create_element("year").expect("arena fits");
        doc.append_child(book, y);
        doc.set_text_content(y, format!("{}", 1990 + (i % 10)))
            .expect("arena fits");
    }
    doc
}

fn title_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("year", AttrBinding::ChildText("year".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial key values — pipes, the id prefixes themselves, the
    /// FD tuple separator, unicode — never split the compiled plan from
    /// the legacy enumeration.
    #[test]
    fn adversarial_docs_plan_matches_legacy(
        random in prop::collection::vec("[ -~]{0,12}", 1..8),
        gamma in 1u32..9,
    ) {
        let mut titles = random;
        for nasty in [
            "|attr=year",
            "key:x|y",
            "fd:e|lhs=v",
            "\u{1f}",
            "a|b|c",
            "ünïcode·νame",
            "",
        ] {
            titles.push(nasty.to_string());
        }
        let doc = doc_with_titles(&titles);
        let binding = title_binding();
        let config = EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)]);
        assert_plan_matches_legacy("adversarial", &doc, &binding, &[], &config);
    }

    /// Batched and per-query evaluation agree on stored query sets from
    /// adversarial documents (selection varies with the seed).
    #[test]
    fn adversarial_batch_matches_per_query(seed in 0u64..500) {
        let titles: Vec<String> = (0..30).map(|i| format!("T{}-{seed}", i * 7 % 13)).collect();
        let doc = doc_with_titles(&titles);
        let binding = title_binding();
        let config = EncoderConfig::new(2, vec![MarkableAttr::integer("book", "year", 1)]);
        let mut marked = doc.clone();
        let report = embed(
            &mut marked,
            &binding,
            &[],
            &config,
            &SecretKey::new(seed.to_be_bytes().to_vec()),
            &Watermark::from_message("© adversarial", 8),
        )
        .expect("embed succeeds");
        let compiled: Vec<Query> = report
            .queries
            .iter()
            .map(|s| Query::compile(&s.xpath).expect("stored query compiles"))
            .collect();
        let evaluator = Evaluator::new(&marked);
        let batched = batch_select(&evaluator, &compiled);
        for (query, batch) in compiled.iter().zip(&batched) {
            let direct = query.select_with(&evaluator);
            if let Some(nodes) = batch {
                prop_assert_eq!(nodes, &direct);
            }
        }
    }
}
