//! Telemetry end-to-end: drive both engines through a real workload,
//! then prove the observability layer reports it faithfully —
//! snapshot → JSON text → `wmx-bench`'s reader → schema validation,
//! registry counters consistent with engine reports, and audit events
//! round-tripping through a sink for both verdict outcomes.

use std::sync::{Arc, Mutex};

use wmx_core::{detect, embed, global_plan_cache, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::{publications, Dataset};
use wmx_stream::{par_detect, stream_embed, StreamContext};

fn dataset() -> Dataset {
    publications::generate(&publications::PublicationsConfig {
        records: 150,
        editors: 6,
        seed: 77,
        gamma: 3,
    })
}

fn key() -> SecretKey {
    SecretKey::from_passphrase("telemetry-key")
}

fn wm() -> Watermark {
    Watermark::from_message("© telemetry", 24)
}

/// One full pipeline pass: DOM embed + detect, streaming embed,
/// parallel detect. Returns (dom report, detection, stream report).
fn exercise() -> (
    wmx_core::EmbedReport,
    wmx_core::DetectionReport,
    wmx_stream::StreamDetectReport,
) {
    let d = dataset();
    let mut marked = d.doc.clone();
    let report = embed(&mut marked, &d.binding, &d.fds, &d.config, &key(), &wm()).expect("embed");
    let detection = detect(
        &marked,
        &DetectionInput {
            queries: &report.queries,
            key: key(),
            watermark: wm(),
            threshold: 0.85,
            mapping: None,
        },
    );
    assert!(detection.detected);

    let input = wmx_xml::to_string(&d.doc);
    let ctx = StreamContext {
        binding: &d.binding,
        fds: &d.fds,
        config: &d.config,
    };
    let mut out = Vec::new();
    stream_embed(input.as_bytes(), &mut out, ctx, &key(), &wm()).expect("stream embed");
    let marked_text = String::from_utf8(out).expect("utf8");
    let stream_detection =
        par_detect(&marked_text, 3, ctx, &key(), &wm(), 0.85).expect("par detect");
    assert!(stream_detection.report.detected);
    (report, detection, stream_detection)
}

#[test]
fn snapshot_roundtrips_through_the_bench_reader_and_reflects_the_run() {
    let plan_lookups_before = global_plan_cache().hits() + global_plan_cache().misses();
    let registry = wmx_telemetry::global();
    let chunks_before = registry.counter("stream.chunks").get();
    let votes_before = registry.counter("stream.votes").get();
    let batch_calls_before = registry.counter("xpath.batch.calls").get();

    let (_, detection, stream_detection) = exercise();

    // Serialize the global registry and read it back with wmx-bench's
    // JSON reader (the re-exported module downstream code uses).
    let snapshot = wmx_telemetry::global_snapshot();
    let text = snapshot.to_pretty_string();
    let parsed = wmx_bench::Json::parse(&text).expect("bench reader parses the snapshot");
    wmx_telemetry::validate_snapshot(&parsed).expect("snapshot schema holds");
    assert_eq!(
        parsed
            .get("schema_version")
            .and_then(wmx_bench::Json::as_usize),
        Some(wmx_telemetry::SNAPSHOT_SCHEMA_VERSION as usize)
    );

    let counter = |name: &str| -> u64 {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(wmx_bench::Json::as_f64)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot")) as u64
    };

    // Plan-cache traffic: the DOM embed and the streaming engines all
    // resolve plans through the global cache.
    assert!(
        counter("core.plan_cache.hits") + counter("core.plan_cache.misses") > plan_lookups_before,
        "pipeline pass must hit the global plan cache"
    );
    // Chunk metrics: sequential embed contributes 1 chunk, par_detect
    // one per worker chunk; other parallel tests may add more.
    assert!(
        counter("stream.chunks") >= chunks_before + 1 + stream_detection.chunk_timings.len() as u64
    );
    assert!(counter("stream.votes") >= votes_before + stream_detection.report.votes_cast as u64);
    // Batched detection went through batch_select at least once.
    assert!(counter("xpath.batch.calls") > batch_calls_before);
    assert!(
        counter("xpath.batch.answered") + counter("xpath.batch.fallback")
            >= detection.total_queries as u64 - detection.unrewritable_queries as u64
    );

    // Phase histograms recorded the spans this thread just ran.
    for phase in [
        "span.embed",
        "span.embed.plan",
        "span.embed.select",
        "span.embed.mark",
        "span.detect",
        "span.detect.resolve",
        "span.detect.select",
        "span.detect.extract",
    ] {
        let count = parsed
            .get("histograms")
            .and_then(|h| h.get(phase))
            .and_then(|h| h.get("count"))
            .and_then(wmx_bench::Json::as_usize)
            .unwrap_or_else(|| panic!("histogram {phase} missing from snapshot"));
        assert!(count > 0, "{phase} recorded nothing");
    }

    // The chunk summary surfaces what used to be silently dropped.
    let summary = stream_detection.chunk_summary().expect("timed chunks");
    assert_eq!(summary.chunks, stream_detection.chunk_timings.len());
    assert_eq!(summary.records, stream_detection.records);
    assert!(summary.min_micros <= summary.mean_micros());
    assert!(summary.mean_micros() <= summary.max_micros);
}

/// A clonable in-memory writer so the test can read the sink's output.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for Buf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn audit_events_for_both_verdicts_roundtrip_through_a_sink() {
    let d = dataset();
    let mut marked = d.doc.clone();
    let report = embed(&mut marked, &d.binding, &d.fds, &d.config, &key(), &wm()).expect("embed");

    let buf = Buf::default();
    let sink = wmx_telemetry::AuditSink::from_writer(Box::new(buf.clone()));

    for (passphrase, expect_detected) in [("telemetry-key", true), ("wrong-key", false)] {
        let detection = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key: SecretKey::from_passphrase(passphrase),
                watermark: wm(),
                threshold: 0.85,
                mapping: None,
            },
        );
        assert_eq!(detection.detected, expect_detected);
        let (ones, zeros) = detection.vote_totals();
        sink.record(&wmx_telemetry::AuditEvent {
            operation: "detect".to_string(),
            engine: "dom".to_string(),
            workload: "publications-150".to_string(),
            records: Some(150),
            phases: vec![("detect".to_string(), 1)],
            counts: vec![
                ("votes_ones".to_string(), ones as u64),
                ("votes_zeros".to_string(), zeros as u64),
            ],
            detected: Some(detection.detected),
            p_value: Some(detection.p_value),
        })
        .expect("audit append");
    }

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one audit line per detection");
    for line in &lines {
        wmx_telemetry::validate_audit_line(line).expect("audit schema holds");
    }
    let verdict = |line: &str| {
        wmx_telemetry::Json::parse(line)
            .unwrap()
            .get("detected")
            .and_then(wmx_telemetry::Json::as_bool)
    };
    assert_eq!(verdict(lines[0]), Some(true));
    assert_eq!(verdict(lines[1]), Some(false));
    // The detected line's vote totals dominate the undetected line's
    // correct-bit votes (wrong key ⇒ votes scatter).
    let ones_of = |line: &str| {
        wmx_telemetry::Json::parse(line)
            .unwrap()
            .get("counts")
            .and_then(|c| c.get("votes_ones"))
            .and_then(wmx_telemetry::Json::as_usize)
            .unwrap()
    };
    assert!(ones_of(lines[0]) + ones_of(lines[1]) > 0);
}
