//! Interned-DOM equivalence suite: the symbol/index refactor must be
//! observationally invisible.
//!
//! * Serialization is byte-identical across a parse→serialize round trip
//!   on every generated corpus (publications, jobs, library) and on
//!   adversarial documents — interning changes how names are *stored*,
//!   never what is *emitted*.
//! * Cross-document copies (`import_subtree`, `compact`) re-intern names
//!   and serialize identically.
//! * The name index agrees with brute-force traversal on every corpus,
//!   before and after embedding (which mutates values and sibling
//!   order), and indexed XPath evaluation returns what a scan returns.

use wmx_core::{embed, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::{jobs, library, publications, Dataset};
use wmx_xml::{parse, to_canonical_string, to_string, Document};
use wmx_xpath::Query;

fn datasets() -> Vec<Dataset> {
    vec![
        publications::generate(&publications::PublicationsConfig {
            records: 180,
            editors: 7,
            seed: 71,
            gamma: 3,
        }),
        jobs::generate(&jobs::JobsConfig {
            records: 180,
            companies: 6,
            seed: 72,
            gamma: 3,
        }),
        library::generate(&library::LibraryConfig {
            records: 90,
            image_size: 12,
            seed: 73,
            gamma: 2,
        }),
    ]
}

const ADVERSARIAL: &[&str] = &[
    "<db><r a=\"1\" b=\"2\"><x>1 &lt; 2 &amp; 3</x></r><r/></db>",
    "<db><![CDATA[if (a<b && c>d) {}]]><r>mixed<b>bold</b>tail</r></db>",
    "<?xml version=\"1.0\"?><!DOCTYPE db><!-- head --><db><?app run?><r/></db><!-- tail -->",
    "<a><b><c><d><e deep=\"yes\"><f/></e></d></c></b></a>",
    "<db><r k=\"say &quot;hi&quot;\">t&#9;ab</r><r k=\"x\"/></db>",
];

/// Every corpus document serializes to the same bytes after a round
/// trip through the interned DOM (parse ∘ serialize is a fixpoint), and
/// canonical forms are stable.
#[test]
fn corpora_serialize_byte_identically() {
    for dataset in datasets() {
        let original = to_string(&dataset.doc);
        let reparsed = parse(&original).expect("corpus reparses");
        assert_eq!(
            to_string(&reparsed),
            original,
            "byte drift on corpus {}",
            dataset.name
        );
        assert_eq!(
            to_canonical_string(&reparsed),
            to_canonical_string(&dataset.doc),
            "canonical drift on corpus {}",
            dataset.name
        );
    }
}

#[test]
fn adversarial_documents_serialize_byte_identically() {
    for input in ADVERSARIAL {
        let doc = parse(input).expect("adversarial doc parses");
        let once = to_string(&doc);
        let twice = to_string(&parse(&once).expect("serialized form reparses"));
        assert_eq!(once, twice, "fixpoint drift on {input}");
    }
}

/// Embedding (value rewrites + sibling swaps) over the interned DOM
/// serializes identically to a reparse of its own output — mutation and
/// index invalidation never corrupt emitted bytes.
#[test]
fn marked_corpora_serialize_byte_identically() {
    for dataset in datasets() {
        let mut marked = dataset.doc.clone();
        embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &SecretKey::from_passphrase("intern-eq"),
            &Watermark::from_message("© intern", 24),
        )
        .expect("embed succeeds");
        let bytes = to_string(&marked);
        let reparsed = parse(&bytes).expect("marked doc reparses");
        assert_eq!(
            to_string(&reparsed),
            bytes,
            "marked byte drift on corpus {}",
            dataset.name
        );
    }
}

/// `import_subtree` and `compact` re-intern symbols; the copies must
/// serialize exactly like the originals.
#[test]
fn cross_document_copies_preserve_bytes() {
    for input in ADVERSARIAL {
        let source = parse(input).expect("parses");
        let root = source.root_element().expect("has a root");
        // Import the root into a fresh document with a different
        // pre-existing symbol population.
        let mut dest = Document::new();
        for decoy in ["zzz", "yyy", "r", "db"] {
            dest.intern(decoy);
        }
        let copied = dest.import_subtree(&source, root).expect("import fits");
        let doc_node = dest.document_node();
        dest.append_child(doc_node, copied);
        assert_eq!(
            to_canonical_string(&dest),
            to_canonical_string(&source),
            "import drift on {input}"
        );
        // Compaction rebuilds the interner from scratch.
        assert_eq!(to_string(&source.compact()), to_string(&source));
    }
}

/// The name index agrees with brute-force traversal on real corpora,
/// before and after watermark embedding.
#[test]
fn name_index_matches_traversal_on_corpora() {
    for dataset in datasets() {
        let mut doc = dataset.doc.clone();
        check_index(&doc, &dataset.name);
        embed(
            &mut doc,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &SecretKey::from_passphrase("intern-eq"),
            &Watermark::from_message("© intern", 24),
        )
        .expect("embed succeeds");
        check_index(&doc, &dataset.name);
    }
}

fn check_index(doc: &Document, corpus: &str) {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<String, Vec<wmx_xml::NodeId>> = BTreeMap::new();
    for node in doc.descendant_elements(doc.document_node()) {
        by_name
            .entry(doc.name(node).expect("element has a name").to_string())
            .or_default()
            .push(node);
    }
    for (name, expected) in &by_name {
        assert_eq!(
            doc.elements_named(name),
            expected.as_slice(),
            "index mismatch for <{name}> on corpus {corpus}"
        );
    }
}

/// Indexed descendant steps return exactly what an unindexed scan
/// returns, including from nested contexts.
#[test]
fn indexed_descendant_queries_match_scan() {
    for dataset in datasets() {
        let doc = &dataset.doc;
        let root = doc.root_element().expect("corpus has a root");
        // Collect the distinct element names below the root.
        let mut names: Vec<String> = doc
            .descendant_elements(root)
            .filter_map(|n| doc.name(n).map(str::to_string))
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let indexed = Query::compile(&format!("//{name}"))
                .expect("query compiles")
                .select(doc);
            let scanned: Vec<wmx_xpath::NodeRef> = doc
                .descendant_elements(doc.document_node())
                .filter(|&n| doc.name(n) == Some(name.as_str()) && doc.parent(n).is_some())
                .map(wmx_xpath::NodeRef::Node)
                .collect();
            assert_eq!(
                indexed, scanned,
                "//{name} mismatch on corpus {}",
                dataset.name
            );
        }
    }
}
