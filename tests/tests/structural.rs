//! Structure-unit (sibling order) watermarking end-to-end: the paper's
//! "structure units … could contain bandwidth" claim, and the fragility
//! trade-off against reordering.

use wmx_attacks::{AlterationAttack, ShuffleAttack};
use wmx_core::{detect, embed, DetectionInput, EncoderConfig, MarkableAttr, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{binding, generate, PublicationsConfig};

fn setup(
    order_only: bool,
) -> (
    wmx_xml::Document,
    wmx_core::EmbedReport,
    SecretKey,
    Watermark,
) {
    let dataset = generate(&PublicationsConfig {
        records: 400,
        editors: 10,
        seed: 88,
        gamma: 1,
    });
    let config = if order_only {
        EncoderConfig::new(1, vec![]).with_structural("book", "author")
    } else {
        EncoderConfig::new(1, vec![MarkableAttr::integer("book", "year", 1)])
            .with_structural("book", "author")
    };
    let key = SecretKey::from_passphrase("structural");
    let wm = Watermark::from_message("structural", 12);
    let mut marked = dataset.doc.clone();
    let report = embed(&mut marked, &binding(), &[], &config, &key, &wm).unwrap();
    (marked, report, key, wm)
}

fn run(
    doc: &wmx_xml::Document,
    report: &wmx_core::EmbedReport,
    key: &SecretKey,
    wm: &Watermark,
) -> wmx_core::DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.8,
            mapping: None,
        },
    )
}

#[test]
fn order_marks_detect_on_clean_document() {
    let (marked, report, key, wm) = setup(true);
    assert!(
        report.marked_units > 50,
        "multi-author books should be plentiful"
    );
    let d = run(&marked, &report, &key, &wm);
    assert!(d.detected);
    assert_eq!(d.match_fraction(), 1.0);
}

#[test]
fn order_marks_survive_value_alteration() {
    // Value perturbation does not touch sibling order.
    let (mut marked, report, key, wm) = setup(true);
    AlterationAttack::values(1.0, vec!["//book/year".into()], 1).apply(&mut marked);
    let d = run(&marked, &report, &key, &wm);
    assert!(d.detected, "value alteration must not erase order marks");
}

#[test]
fn order_marks_die_under_shuffle_value_marks_survive() {
    let (mut order_marked, order_report, key, wm) = setup(true);
    ShuffleAttack::new(2).apply(&mut order_marked);
    let d = run(&order_marked, &order_report, &key, &wm);
    assert!(
        !d.detected,
        "shuffle should erase order-only marks (match {:.2})",
        d.match_fraction()
    );

    let (mut both_marked, both_report, key, wm) = setup(false);
    ShuffleAttack::new(2).apply(&mut both_marked);
    let d = run(&both_marked, &both_report, &key, &wm);
    assert!(
        d.detected,
        "value marks must carry detection through a shuffle"
    );
}

#[test]
fn order_marks_preserve_value_multisets() {
    let dataset = generate(&PublicationsConfig {
        records: 200,
        editors: 8,
        seed: 89,
        gamma: 1,
    });
    let config = EncoderConfig::new(1, vec![]).with_structural("book", "author");
    let mut marked = dataset.doc.clone();
    embed(
        &mut marked,
        &binding(),
        &[],
        &config,
        &SecretKey::from_passphrase("s"),
        &Watermark::from_message("s", 8),
    )
    .unwrap();
    // Canonicalize with sorted children per book: author multisets match.
    let collect = |doc: &wmx_xml::Document| -> Vec<Vec<String>> {
        let root = doc.root_element().unwrap();
        doc.child_elements_named(root, "book")
            .map(|b| {
                let mut authors: Vec<String> = doc
                    .child_elements_named(b, "author")
                    .map(|a| doc.text_content(a))
                    .collect();
                authors.sort();
                authors
            })
            .collect()
    };
    assert_eq!(collect(&dataset.doc), collect(&marked));
}
