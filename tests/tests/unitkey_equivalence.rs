//! UnitKey ≡ string-id equivalence suite: the symbol-native selection
//! pipeline must make bit-for-bit the same decisions as the legacy
//! `format!`-built unit-id strings.
//!
//! * Every enumerated unit's [`wmx_core::UnitKey`] renders exactly the
//!   legacy id text (re-derived here independently from the key parts),
//!   and the incremental PRF feed agrees with the string feed on
//!   selection, bit index, nonce, and whitening — across generated
//!   corpora, adversarial key values (proptest: pipes, separators,
//!   unicode, the `key:`/`fd:` prefixes themselves), and all unit
//!   flavours.
//! * End to end, DOM detection (which feeds the PRF the *persisted
//!   string* ids from the safeguarded query set) and streaming
//!   detection (which feeds compact keys) produce identical vote
//!   tallies and verdicts on marked corpora.

use proptest::prelude::*;
use wmx_core::{
    detect, embed, enumerate_units, DetectionInput, EncoderConfig, MarkableAttr, SelectionTable,
    UnitKey, UnitTag, Watermark,
};
use wmx_crypto::{Prf, SecretKey};
use wmx_data::{jobs, library, publications, Dataset};
use wmx_rewrite::binding::{AttrBinding, EntityBinding};
use wmx_rewrite::SchemaBinding;
use wmx_stream::{stream_detect, StreamContext};
use wmx_xml::Document;

fn datasets() -> Vec<Dataset> {
    vec![
        publications::generate(&publications::PublicationsConfig {
            records: 150,
            editors: 6,
            seed: 81,
            gamma: 3,
        }),
        jobs::generate(&jobs::JobsConfig {
            records: 150,
            companies: 5,
            seed: 82,
            gamma: 3,
        }),
        library::generate(&library::LibraryConfig {
            records: 80,
            image_size: 12,
            seed: 83,
            gamma: 2,
        }),
    ]
}

/// Independent re-derivation of the legacy string unit id from the key
/// parts — intentionally NOT `UnitKey::display`, so drift in either
/// direction fails the suite.
fn legacy_id(table: &SelectionTable, key: &UnitKey) -> String {
    match key.tag {
        UnitTag::KeyAttr => format!(
            "key:{}|{}|attr={}",
            table.resolve(key.name),
            key.values[0],
            table.resolve(key.attr.expect("key unit attr"))
        ),
        UnitTag::SiblingOrder => format!(
            "ord:{}|{}|attr={}",
            table.resolve(key.name),
            key.values[0],
            table.resolve(key.attr.expect("order unit attr"))
        ),
        UnitTag::FdGroup => format!(
            "fd:{}|lhs={}",
            table.resolve(key.name),
            key.values.join("\u{1f}")
        ),
    }
}

/// Asserts the compact key and the legacy string make identical PRF
/// decisions under `prf`.
fn assert_prf_agreement(prf: &Prf, table: &SelectionTable, key: &UnitKey) {
    let rendered = key.display(table);
    assert_eq!(rendered, legacy_id(table, key), "display drifted");
    for gamma in [1u32, 2, 3, 7, 100] {
        assert_eq!(
            prf.is_selected(&key.id(table), gamma),
            prf.is_selected(rendered.as_str(), gamma),
            "selection mismatch at gamma {gamma} for {rendered:?}"
        );
    }
    for wm_len in [1usize, 8, 24] {
        assert_eq!(
            prf.bit_index(&key.id(table), wm_len),
            prf.bit_index(rendered.as_str(), wm_len),
            "bit index mismatch for {rendered:?}"
        );
    }
    assert_eq!(
        prf.value_nonce(&key.id(table)),
        prf.value_nonce(rendered.as_str()),
        "nonce mismatch for {rendered:?}"
    );
    assert_eq!(
        prf.whiten_bit(&key.id(table)),
        prf.whiten_bit(rendered.as_str()),
        "whitening mismatch for {rendered:?}"
    );
}

/// Every unit of every corpus: identical display text and identical PRF
/// decisions between the key feed and the string feed.
#[test]
fn corpus_units_agree_with_string_path() {
    let prf = Prf::new(SecretKey::from_passphrase("unitkey-eq"));
    for dataset in datasets() {
        let table = SelectionTable::build(&dataset.config, &dataset.fds);
        let units = enumerate_units(
            &dataset.doc,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &table,
        )
        .expect("corpus enumerates");
        assert!(!units.is_empty(), "corpus {} has units", dataset.name);
        for unit in &units {
            assert_prf_agreement(&prf, &table, &unit.key);
        }
    }
}

/// The persisted safeguard ids (StoredQuery.unit_id) are exactly the
/// rendered keys of the marked units — the on-disk format is unchanged.
#[test]
fn stored_query_ids_keep_legacy_format() {
    for dataset in datasets() {
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &SecretKey::from_passphrase("unitkey-eq"),
            &Watermark::from_message("© unitkey", 24),
        )
        .expect("embed succeeds");
        assert!(!report.queries.is_empty());
        for stored in &report.queries {
            assert!(
                stored.unit_id.starts_with("key:")
                    || stored.unit_id.starts_with("ord:")
                    || stored.unit_id.starts_with("fd:"),
                "unexpected id shape {:?}",
                stored.unit_id
            );
        }
    }
}

/// End to end: DOM detection (string ids from the safeguarded query
/// set) and streaming detection (compact keys, query-free) tally
/// identical votes and verdicts on a marked corpus.
#[test]
fn dom_and_stream_votes_agree() {
    for dataset in datasets() {
        let key = SecretKey::from_passphrase("unitkey-eq-votes");
        let wm = Watermark::from_message("© votes", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .expect("embed succeeds");
        let dom = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key: key.clone(),
                watermark: wm.clone(),
                threshold: 0.85,
                mapping: None,
            },
        );
        let streamed = stream_detect(
            wmx_xml::to_string(&marked).as_bytes(),
            StreamContext {
                binding: &dataset.binding,
                fds: &dataset.fds,
                config: &dataset.config,
            },
            &key,
            &wm,
            0.85,
        )
        .expect("stream detect runs");
        assert_eq!(
            dom.bit_votes, streamed.report.bit_votes,
            "vote tallies diverged on corpus {}",
            dataset.name
        );
        assert_eq!(dom.vote_totals(), streamed.report.vote_totals());
        assert_eq!(dom.detected, streamed.report.detected);
        assert!(dom.detected, "corpus {} must detect", dataset.name);
    }
}

/// Builds `<db>` with one `<book>` per (title, year) pair, attaching the
/// values as raw DOM text so arbitrary characters survive verbatim.
fn doc_with_titles(titles: &[String]) -> Document {
    let mut doc = Document::new();
    let db = doc.create_element("db").expect("arena fits");
    let doc_node = doc.document_node();
    doc.append_child(doc_node, db);
    for (i, title) in titles.iter().enumerate() {
        let book = doc.create_element("book").expect("arena fits");
        doc.append_child(db, book);
        let t = doc.create_element("title").expect("arena fits");
        doc.append_child(book, t);
        doc.set_text_content(t, title.clone()).expect("arena fits");
        let y = doc.create_element("year").expect("arena fits");
        doc.append_child(book, y);
        doc.set_text_content(y, format!("{}", 1990 + (i % 10)))
            .expect("arena fits");
    }
    doc
}

fn title_binding() -> SchemaBinding {
    SchemaBinding::new(
        "db",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("year", AttrBinding::ChildText("year".into())),
            ],
        )
        .expect("static binding is valid")],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial key values — pipes, the id prefixes themselves, the
    /// FD tuple separator, unicode — never split the key path from the
    /// string path.
    #[test]
    fn adversarial_key_values_agree(
        random in prop::collection::vec("[ -~]{0,12}", 1..8)
    ) {
        // Random printable-ASCII titles plus fixed nasties aimed
        // directly at the id syntax.
        let mut titles = random;
        for nasty in [
            "|attr=year",
            "key:x|y",
            "fd:e|lhs=v",
            "\u{1f}",
            "a|b|c",
            "ünïcode·νame",
            "",
        ] {
            titles.push(nasty.to_string());
        }
        let doc = doc_with_titles(&titles);
        let binding = title_binding();
        let config = EncoderConfig::new(3, vec![MarkableAttr::integer("book", "year", 1)]);
        let table = SelectionTable::build(&config, &[]);
        let units = enumerate_units(&doc, &binding, &[], &config, &table)
            .expect("adversarial doc enumerates");
        let prf = Prf::new(SecretKey::from_passphrase("adversarial"));
        for unit in &units {
            assert_prf_agreement(&prf, &table, &unit.key);
        }
    }

    /// Selection totals over a whole document agree between the two id
    /// paths for every γ (counted independently, not per unit).
    #[test]
    fn selection_counts_agree(seed in 0u64..1000, gamma in 1u32..9) {
        let titles: Vec<String> = (0..40).map(|i| format!("T{}-{seed}", i * 7 % 13)).collect();
        let doc = doc_with_titles(&titles);
        let binding = title_binding();
        let config = EncoderConfig::new(gamma, vec![MarkableAttr::integer("book", "year", 1)]);
        let table = SelectionTable::build(&config, &[]);
        let units = enumerate_units(&doc, &binding, &[], &config, &table).expect("enumerates");
        let prf = Prf::new(SecretKey::new(seed.to_be_bytes().to_vec()));
        let by_key = units
            .iter()
            .filter(|u| prf.is_selected(&u.key.id(&table), gamma))
            .count();
        let by_string = units
            .iter()
            .filter(|u| prf.is_selected(u.key.display(&table).as_str(), gamma))
            .count();
        prop_assert_eq!(by_key, by_string);
    }
}
