//! End-to-end pipeline tests: embed → (attack) → detect across all
//! datasets, exercising the public API exactly as a downstream user
//! would.

use wmx_core::{detect, embed, measure_usability, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::{jobs, library, publications, Dataset};
use wmx_xml::{parse, to_string};

fn datasets() -> Vec<Dataset> {
    vec![
        publications::generate(&publications::PublicationsConfig {
            records: 250,
            editors: 8,
            seed: 11,
            gamma: 3,
        }),
        jobs::generate(&jobs::JobsConfig {
            records: 250,
            companies: 9,
            seed: 22,
            gamma: 3,
        }),
        library::generate(&library::LibraryConfig {
            records: 150,
            image_size: 16,
            seed: 33,
            gamma: 2,
        }),
    ]
}

#[test]
fn embed_detect_roundtrip_on_every_dataset() {
    for dataset in datasets() {
        let key = SecretKey::from_passphrase("pipeline-key");
        let wm = Watermark::from_message("© integration", 24);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .unwrap_or_else(|e| panic!("{}: embed failed: {e}", dataset.name));
        assert!(report.marked_units > 0, "{}: nothing marked", dataset.name);

        let detection = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key: key.clone(),
                watermark: wm.clone(),
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(detection.detected, "{}: not detected", dataset.name);
        assert_eq!(
            detection.match_fraction(),
            1.0,
            "{}: imperfect recovery on untouched doc",
            dataset.name
        );

        // Imperceptibility: usability stays at 100% under the declared
        // tolerances.
        let usability = measure_usability(
            &dataset.doc,
            &dataset.binding,
            &marked,
            &dataset.binding,
            &dataset.templates,
            &dataset.config,
        )
        .unwrap();
        assert_eq!(
            usability.overall(),
            1.0,
            "{}: embedding degraded usability",
            dataset.name
        );
    }
}

#[test]
fn marked_document_survives_serialization_roundtrip() {
    // The owner publishes the marked XML as text; detection operates on
    // the re-parsed file.
    for dataset in datasets() {
        let key = SecretKey::from_passphrase("serialize-key");
        let wm = Watermark::from_message("roundtrip", 16);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .unwrap();
        let published = to_string(&marked);
        let reparsed =
            parse(&published).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", dataset.name));
        let detection = detect(
            &reparsed,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(
            detection.detected,
            "{}: detection failed after serialize/parse",
            dataset.name
        );
        assert_eq!(detection.match_fraction(), 1.0, "{}", dataset.name);
    }
}

#[test]
fn stored_query_texts_are_self_contained() {
    // The paper's contract: the user keeps only the query set + key.
    // Compiling the query *texts* (not the in-memory ASTs) must locate
    // the marks.
    let dataset = publications::generate(&publications::PublicationsConfig {
        records: 120,
        editors: 6,
        seed: 44,
        gamma: 2,
    });
    let key = SecretKey::from_passphrase("contract");
    let wm = Watermark::from_message("contract", 12);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();
    for sq in &report.queries {
        let q = wmx_xpath::Query::compile(&sq.xpath)
            .unwrap_or_else(|e| panic!("stored query does not re-compile: {} ({e})", sq.xpath));
        assert!(
            !q.select(&marked).is_empty(),
            "stored query finds nothing: {}",
            sq.xpath
        );
    }
}

#[test]
fn detection_requires_both_key_and_watermark() {
    let dataset = jobs::generate(&jobs::JobsConfig {
        records: 300,
        companies: 10,
        seed: 55,
        gamma: 2,
    });
    let key = SecretKey::from_passphrase("right-key");
    let wm = Watermark::from_message("right-mark", 24);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();

    let attempt = |k: &str, w: &str| -> bool {
        detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key: SecretKey::from_passphrase(k),
                watermark: Watermark::from_message(w, 24),
                threshold: 0.85,
                mapping: None,
            },
        )
        .detected
    };
    assert!(attempt("right-key", "right-mark"));
    assert!(!attempt("wrong-key", "right-mark"));
    assert!(!attempt("right-key", "wrong-mark"));
    assert!(!attempt("wrong-key", "wrong-mark"));
}

#[test]
fn watermarks_of_various_lengths_roundtrip() {
    let dataset = publications::generate(&publications::PublicationsConfig {
        records: 400,
        editors: 10,
        seed: 66,
        gamma: 1,
    });
    for len in [1, 2, 8, 64, 128] {
        let key = SecretKey::from_passphrase("len-key");
        let wm = Watermark::from_message("length sweep", len);
        let mut marked = dataset.doc.clone();
        let report = embed(
            &mut marked,
            &dataset.binding,
            &dataset.fds,
            &dataset.config,
            &key,
            &wm,
        )
        .unwrap();
        let detection = detect(
            &marked,
            &DetectionInput {
                queries: &report.queries,
                key,
                watermark: wm,
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(detection.detected, "wm length {len} failed");
    }
}

#[test]
fn two_owners_marks_coexist() {
    // Owner A marks years; owner B (different key) marks the already-
    // marked document. A's mark must still be detectable afterwards:
    // re-marking is itself an alteration attack of bounded magnitude.
    let dataset = publications::generate(&publications::PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 77,
        gamma: 3,
    });
    let key_a = SecretKey::from_passphrase("owner-a");
    let key_b = SecretKey::from_passphrase("owner-b");
    let wm = Watermark::from_message("shared-mark-text", 16);

    let mut doc = dataset.doc.clone();
    let report_a = embed(
        &mut doc,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key_a,
        &wm,
    )
    .unwrap();
    let _report_b = embed(
        &mut doc,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key_b,
        &wm,
    )
    .unwrap();

    let detection_a = detect(
        &doc,
        &DetectionInput {
            queries: &report_a.queries,
            key: key_a,
            watermark: wm.clone(),
            threshold: 0.75,
            mapping: None,
        },
    );
    // B re-marked ~1/3 of units with its own selection; the overlap that
    // flipped A's parities is ~1/6 of A's marks — majority voting holds.
    assert!(
        detection_a.detected,
        "owner A lost the mark after re-marking: {:.2}",
        detection_a.match_fraction()
    );
}
