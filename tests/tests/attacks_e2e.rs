//! End-to-end attack/defense tests: each §4 demo attack against a
//! watermarked document, asserting the paper's claimed outcomes.

use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{
    AlterationAttack, ReductionAttack, RedundancyRemovalAttack, RenameAttack, ShuffleAttack,
};
use wmx_core::{detect, embed, measure_usability, DetectionInput, EmbedReport, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_data::Dataset;
use wmx_stream::{par_detect, stream_detect, StreamContext};
use wmx_xml::Document;

fn setup(gamma: u32) -> (Dataset, Document, EmbedReport, SecretKey, Watermark) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 4242,
        gamma,
    });
    let key = SecretKey::from_passphrase("attack-suite");
    let wm = Watermark::from_message("© suite", 16);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();
    (dataset, marked, report, key, wm)
}

fn run_detection(
    doc: &Document,
    report: &EmbedReport,
    key: &SecretKey,
    wm: &Watermark,
) -> wmx_core::DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.8,
            mapping: None,
        },
    )
}

#[test]
fn attack_a_light_alteration_fails_heavy_succeeds_but_destroys_usability() {
    let (dataset, marked, report, key, wm) = setup(2);

    // Light alteration (10%): watermark survives.
    let mut light = marked.clone();
    AlterationAttack::values(0.10, vec!["//book/year".into()], 1).apply(&mut light);
    assert!(run_detection(&light, &report, &key, &wm).detected);

    // Total alteration (100%): watermark dies — but so does usability.
    let mut heavy = marked.clone();
    AlterationAttack::values(1.0, vec!["//book/year".into()], 2).apply(&mut heavy);
    let detection = run_detection(&heavy, &report, &key, &wm);
    let usability = measure_usability(
        &dataset.doc,
        &dataset.binding,
        &heavy,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .unwrap();
    // published-when template is fully destroyed (0/4 templates can be
    // partially credited: overall usability drops to 75%).
    assert!(
        usability.overall() <= 0.80,
        "usability {}",
        usability.overall()
    );
    assert!(
        !detection.detected || usability.overall() < 0.8,
        "watermark alive only if usability is destroyed"
    );
}

#[test]
fn attack_b_reduction_survives_down_to_small_subsets() {
    let (_, marked, report, key, wm) = setup(2);
    for keep in [0.75, 0.5, 0.25, 0.1] {
        let mut attacked = marked.clone();
        ReductionAttack::new(keep, "/db/book", 3).apply(&mut attacked);
        let detection = run_detection(&attacked, &report, &key, &wm);
        assert!(
            detection.detected,
            "reduction keep={keep} killed detection (match {:.2})",
            detection.match_fraction()
        );
    }
}

#[test]
fn attack_b_reduction_to_nothing_defeats_detection() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ReductionAttack::new(0.0, "/db/book", 3).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(!detection.detected);
    assert_eq!(detection.located_queries, 0);
}

#[test]
fn attack_c_shuffle_and_rename_of_unbound_tags() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ShuffleAttack::new(9).apply(&mut attacked);
    // Renaming elements the identity queries never mention is harmless.
    RenameAttack::new(vec![("author", "writer")]).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(detection.detected);
    assert_eq!(detection.match_fraction(), 1.0);
}

#[test]
fn attack_c_rename_of_marked_tag_degrades_only_that_family() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    RenameAttack::new(vec![("year", "published")]).apply(&mut attacked);
    // Year-unit queries dangle, but publisher FD-group queries still
    // vote — detection rightly survives on the surviving family.
    let detection = run_detection(&attacked, &report, &key, &wm);
    let year_queries = report
        .queries
        .iter()
        .filter(|q| q.xpath.ends_with("/year"))
        .count();
    assert!(year_queries > 0);
    assert_eq!(
        detection.located_queries,
        report.queries.len() - year_queries,
        "exactly the year queries must dangle"
    );
    assert!(detection.detected, "publisher marks still prove ownership");
}

#[test]
fn attack_c_rename_of_entity_element_requires_rewriting() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    // Renaming the entity element itself (book → record) strands every
    // identity query; only rewriting under a new binding could recover.
    RenameAttack::new(vec![("book", "record")]).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(!detection.detected);
    assert_eq!(detection.located_queries, 0);
}

#[test]
fn attack_d_wmxml_immune_fd_unaware_dies() {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 8,
        seed: 999,
        gamma: 1,
    });
    let key = SecretKey::from_passphrase("fd-suite");
    let wm = Watermark::from_message("fd", 8);

    // Isolate the FD-dependent attribute: publisher only.
    let fd_aware =
        wmx_core::EncoderConfig::new(1, vec![wmx_core::MarkableAttr::text("book", "publisher")]);
    let fd_unaware = fd_aware.clone().without_fd_groups();

    // WmXML: marks FD groups consistently → attack is a no-op.
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &fd_aware,
        &key,
        &wm,
    )
    .unwrap();
    let mut attacked = marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);
    assert_eq!(rewritten, 0, "WmXML groups must already be consistent");
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(detection.detected);

    // FD-unaware: duplicates marked independently → unification erases.
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &fd_unaware,
        &key,
        &wm,
    )
    .unwrap();
    let mut attacked = marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);
    assert!(rewritten > 0, "attack must find divergent duplicates");
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(
        detection.match_fraction() < 0.8,
        "FD-unaware marks should be erased, match {:.2}",
        detection.match_fraction()
    );

    // …and the attack did NOT hurt usability.
    let usability = measure_usability(
        &dataset.doc,
        &dataset.binding,
        &attacked,
        &dataset.binding,
        &dataset.templates,
        &fd_unaware,
    )
    .unwrap();
    assert!(usability.overall() > 0.95);
}

#[test]
fn attack_c_record_shuffle_across_chunk_boundaries_is_worker_invariant() {
    // A shuffle permutes records, so after the attack the records that
    // used to share a worker chunk land in different chunks — every
    // parallel chunking of the shuffled stream is a different partition
    // of the same unit set. Key-based identity makes chunk membership
    // irrelevant: the sequential driver and every worker count must
    // tally the exact same votes, and all must agree with the verdict.
    let (dataset, marked, _report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    let reordered = ShuffleAttack::new(77).apply(&mut attacked);
    assert!(reordered > 0, "shuffle must actually permute records");
    let serialized = wmx_xml::to_string(&attacked);
    let ctx = StreamContext {
        binding: &dataset.binding,
        fds: &dataset.fds,
        config: &dataset.config,
    };

    let sequential =
        stream_detect(serialized.as_bytes(), ctx, &key, &wm, 0.8).expect("sequential detect runs");
    assert!(
        sequential.report.detected,
        "shuffle must not defeat streaming detection (match {:.2})",
        sequential.report.match_fraction()
    );

    for workers in [2usize, 3, 5, 8] {
        let parallel =
            par_detect(&serialized, workers, ctx, &key, &wm, 0.8).expect("parallel detect runs");
        assert_eq!(
            sequential.report.bit_votes, parallel.report.bit_votes,
            "vote tallies diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.vote_totals(),
            parallel.report.vote_totals(),
            "vote totals diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.located_queries, parallel.report.located_queries,
            "located counts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.total_queries, parallel.report.total_queries,
            "selected-unit counts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.detected, parallel.report.detected,
            "verdicts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.records, parallel.records,
            "record counts diverged at {workers} workers"
        );
    }
}

#[test]
fn combined_attacks_within_usability_budget_fail_to_erase() {
    // The demo's summary claim, (i): as long as usability survives, so
    // does the watermark — even under a combination of attacks.
    let (dataset, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ReductionAttack::new(0.7, "/db/book", 21).apply(&mut attacked);
    ShuffleAttack::new(22).apply(&mut attacked);
    AlterationAttack::values(0.15, vec!["//book/year".into()], 23).apply(&mut attacked);
    RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);

    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(
        detection.detected,
        "combined mild attacks erased the mark: match {:.2}",
        detection.match_fraction()
    );
}
