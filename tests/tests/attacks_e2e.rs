//! End-to-end attack/defense tests: each §4 demo attack against a
//! watermarked document, asserting the paper's claimed outcomes.

use std::collections::BTreeSet;
use wmx_attacks::redundancy::UnifyStrategy;
use wmx_attacks::{
    AlterationAttack, GarbleAttack, GarbleMode, ReductionAttack, RedundancyRemovalAttack,
    RenameAttack, ShuffleAttack,
};
use wmx_core::{
    detect, detect_forensic, embed, enumerate_units, measure_usability, repair_document,
    write_value, DetectionInput, EmbedReport, ForensicContext, SelectionTable, UnitMarker,
    UnitStatus, Watermark,
};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_data::Dataset;
use wmx_stream::{par_detect, stream_detect, StreamContext};
use wmx_xml::Document;

fn setup(gamma: u32) -> (Dataset, Document, EmbedReport, SecretKey, Watermark) {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 10,
        seed: 4242,
        gamma,
    });
    let key = SecretKey::from_passphrase("attack-suite");
    let wm = Watermark::from_message("© suite", 16);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();
    (dataset, marked, report, key, wm)
}

fn run_detection(
    doc: &Document,
    report: &EmbedReport,
    key: &SecretKey,
    wm: &Watermark,
) -> wmx_core::DetectionReport {
    detect(
        doc,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.8,
            mapping: None,
        },
    )
}

#[test]
fn attack_a_light_alteration_fails_heavy_succeeds_but_destroys_usability() {
    let (dataset, marked, report, key, wm) = setup(2);

    // Light alteration (10%): watermark survives.
    let mut light = marked.clone();
    AlterationAttack::values(0.10, vec!["//book/year".into()], 1).apply(&mut light);
    assert!(run_detection(&light, &report, &key, &wm).detected);

    // Total alteration (100%): watermark dies — but so does usability.
    let mut heavy = marked.clone();
    AlterationAttack::values(1.0, vec!["//book/year".into()], 2).apply(&mut heavy);
    let detection = run_detection(&heavy, &report, &key, &wm);
    let usability = measure_usability(
        &dataset.doc,
        &dataset.binding,
        &heavy,
        &dataset.binding,
        &dataset.templates,
        &dataset.config,
    )
    .unwrap();
    // published-when template is fully destroyed (0/4 templates can be
    // partially credited: overall usability drops to 75%).
    assert!(
        usability.overall() <= 0.80,
        "usability {}",
        usability.overall()
    );
    assert!(
        !detection.detected || usability.overall() < 0.8,
        "watermark alive only if usability is destroyed"
    );
}

#[test]
fn attack_b_reduction_survives_down_to_small_subsets() {
    let (_, marked, report, key, wm) = setup(2);
    for keep in [0.75, 0.5, 0.25, 0.1] {
        let mut attacked = marked.clone();
        ReductionAttack::new(keep, "/db/book", 3).apply(&mut attacked);
        let detection = run_detection(&attacked, &report, &key, &wm);
        assert!(
            detection.detected,
            "reduction keep={keep} killed detection (match {:.2})",
            detection.match_fraction()
        );
    }
}

#[test]
fn attack_b_reduction_to_nothing_defeats_detection() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ReductionAttack::new(0.0, "/db/book", 3).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(!detection.detected);
    assert_eq!(detection.located_queries, 0);
}

#[test]
fn attack_c_shuffle_and_rename_of_unbound_tags() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ShuffleAttack::new(9).apply(&mut attacked);
    // Renaming elements the identity queries never mention is harmless.
    RenameAttack::new(vec![("author", "writer")]).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(detection.detected);
    assert_eq!(detection.match_fraction(), 1.0);
}

#[test]
fn attack_c_rename_of_marked_tag_degrades_only_that_family() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    RenameAttack::new(vec![("year", "published")]).apply(&mut attacked);
    // Year-unit queries dangle, but publisher FD-group queries still
    // vote — detection rightly survives on the surviving family.
    let detection = run_detection(&attacked, &report, &key, &wm);
    let year_queries = report
        .queries
        .iter()
        .filter(|q| q.xpath.ends_with("/year"))
        .count();
    assert!(year_queries > 0);
    assert_eq!(
        detection.located_queries,
        report.queries.len() - year_queries,
        "exactly the year queries must dangle"
    );
    assert!(detection.detected, "publisher marks still prove ownership");
}

#[test]
fn attack_c_rename_of_entity_element_requires_rewriting() {
    let (_, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    // Renaming the entity element itself (book → record) strands every
    // identity query; only rewriting under a new binding could recover.
    RenameAttack::new(vec![("book", "record")]).apply(&mut attacked);
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(!detection.detected);
    assert_eq!(detection.located_queries, 0);
}

#[test]
fn attack_d_wmxml_immune_fd_unaware_dies() {
    let dataset = generate(&PublicationsConfig {
        records: 500,
        editors: 8,
        seed: 999,
        gamma: 1,
    });
    let key = SecretKey::from_passphrase("fd-suite");
    let wm = Watermark::from_message("fd", 8);

    // Isolate the FD-dependent attribute: publisher only.
    let fd_aware =
        wmx_core::EncoderConfig::new(1, vec![wmx_core::MarkableAttr::text("book", "publisher")]);
    let fd_unaware = fd_aware.clone().without_fd_groups();

    // WmXML: marks FD groups consistently → attack is a no-op.
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &fd_aware,
        &key,
        &wm,
    )
    .unwrap();
    let mut attacked = marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);
    assert_eq!(rewritten, 0, "WmXML groups must already be consistent");
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(detection.detected);

    // FD-unaware: duplicates marked independently → unification erases.
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &fd_unaware,
        &key,
        &wm,
    )
    .unwrap();
    let mut attacked = marked.clone();
    let rewritten = RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);
    assert!(rewritten > 0, "attack must find divergent duplicates");
    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(
        detection.match_fraction() < 0.8,
        "FD-unaware marks should be erased, match {:.2}",
        detection.match_fraction()
    );

    // …and the attack did NOT hurt usability.
    let usability = measure_usability(
        &dataset.doc,
        &dataset.binding,
        &attacked,
        &dataset.binding,
        &dataset.templates,
        &fd_unaware,
    )
    .unwrap();
    assert!(usability.overall() > 0.95);
}

#[test]
fn attack_c_record_shuffle_across_chunk_boundaries_is_worker_invariant() {
    // A shuffle permutes records, so after the attack the records that
    // used to share a worker chunk land in different chunks — every
    // parallel chunking of the shuffled stream is a different partition
    // of the same unit set. Key-based identity makes chunk membership
    // irrelevant: the sequential driver and every worker count must
    // tally the exact same votes, and all must agree with the verdict.
    let (dataset, marked, _report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    let reordered = ShuffleAttack::new(77).apply(&mut attacked);
    assert!(reordered > 0, "shuffle must actually permute records");
    let serialized = wmx_xml::to_string(&attacked);
    let ctx = StreamContext {
        binding: &dataset.binding,
        fds: &dataset.fds,
        config: &dataset.config,
    };

    let sequential =
        stream_detect(serialized.as_bytes(), ctx, &key, &wm, 0.8).expect("sequential detect runs");
    assert!(
        sequential.report.detected,
        "shuffle must not defeat streaming detection (match {:.2})",
        sequential.report.match_fraction()
    );

    for workers in [2usize, 3, 5, 8] {
        let parallel =
            par_detect(&serialized, workers, ctx, &key, &wm, 0.8).expect("parallel detect runs");
        assert_eq!(
            sequential.report.bit_votes, parallel.report.bit_votes,
            "vote tallies diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.vote_totals(),
            parallel.report.vote_totals(),
            "vote totals diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.located_queries, parallel.report.located_queries,
            "located counts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.total_queries, parallel.report.total_queries,
            "selected-unit counts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.report.detected, parallel.report.detected,
            "verdicts diverged at {workers} workers"
        );
        assert_eq!(
            sequential.records, parallel.records,
            "record counts diverged at {workers} workers"
        );
    }
}

#[test]
fn combined_attacks_within_usability_budget_fail_to_erase() {
    // The demo's summary claim, (i): as long as usability survives, so
    // does the watermark — even under a combination of attacks.
    let (dataset, marked, report, key, wm) = setup(2);
    let mut attacked = marked.clone();
    ReductionAttack::new(0.7, "/db/book", 21).apply(&mut attacked);
    ShuffleAttack::new(22).apply(&mut attacked);
    AlterationAttack::values(0.15, vec!["//book/year".into()], 23).apply(&mut attacked);
    RedundancyRemovalAttack::new(dataset.fds.clone(), UnifyStrategy::MajorityValue)
        .apply(&mut attacked);

    let detection = run_detection(&attacked, &report, &key, &wm);
    assert!(
        detection.detected,
        "combined mild attacks erased the mark: match {:.2}",
        detection.match_fraction()
    );
}

// ---------------------------------------------------------------------
// Tamper localization and error-correcting recovery under the same
// attack families.

fn forensic_detection(
    doc: &Document,
    dataset: &Dataset,
    config: &wmx_core::EncoderConfig,
    report: &EmbedReport,
    key: &SecretKey,
    wm: &Watermark,
) -> wmx_core::DetectionReport {
    detect_forensic(
        doc,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.8,
            mapping: None,
        },
        ForensicContext {
            binding: &dataset.binding,
            fds: &dataset.fds,
            config,
        },
    )
    .expect("forensic detect")
}

#[test]
fn forensics_localize_targeted_damage_to_the_exact_records() {
    let (dataset, marked, report, key, wm) = setup(2);

    // Flip the parity of every 12th selected numeric unit (+7 always
    // crosses parity), remembering exactly which records were hit.
    let table = SelectionTable::build(&dataset.config, &dataset.fds);
    let units = enumerate_units(
        &marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &table,
    )
    .unwrap();
    let marker = UnitMarker::new(key.clone());
    let mut attacked = marked.clone();
    let mut damaged: BTreeSet<String> = BTreeSet::new();
    let mut numeric = 0usize;
    for unit in &units {
        if !marker.is_selected(&unit.key.id(&table), dataset.config.gamma) {
            continue;
        }
        let Ok(year) = unit.nodes[0].string_value(&attacked).parse::<i64>() else {
            continue;
        };
        numeric += 1;
        if !numeric.is_multiple_of(12) {
            continue;
        }
        write_value(&mut attacked, &unit.nodes[0], &(year + 7).to_string()).unwrap();
        damaged.insert(unit.key.record_scope(&table));
    }
    assert!(damaged.len() >= 3, "need a non-trivial damage set");

    let detection = forensic_detection(&attacked, &dataset, &dataset.config, &report, &key, &wm);
    assert!(detection.detected, "thin damage must not defeat detection");
    let forensics = detection.forensics.expect("forensics attached");
    assert!(forensics.tampered);
    let suspects: BTreeSet<String> = forensics
        .records
        .iter()
        .filter(|r| r.status == UnitStatus::Suspect)
        .map(|r| r.record.clone())
        .collect();
    assert_eq!(
        suspects, damaged,
        "suspect records must be exactly the damaged ones"
    );

    // The untouched original reports no tampering evidence at all.
    let clean = forensic_detection(&marked, &dataset, &dataset.config, &report, &key, &wm);
    let clean_forensics = clean.forensics.unwrap();
    assert!(!clean_forensics.tampered);
    assert_eq!(clean_forensics.suspect_records, 0);
}

#[test]
fn seeded_attacks_reproduce_identical_forensics() {
    // Every randomized attack takes an explicit seed; the same seed
    // must reproduce the same attacked bytes and the same forensics.
    let (dataset, marked, report, key, wm) = setup(3);
    let attack = |seed: u64| {
        let mut doc = marked.clone();
        AlterationAttack::values(0.2, vec!["//book/year".into()], seed).apply(&mut doc);
        ShuffleAttack::new(seed).apply(&mut doc);
        wmx_xml::to_string(&doc)
    };
    let a = attack(9);
    assert_eq!(a, attack(9), "same seed, same attacked bytes");
    assert_ne!(a, attack(10), "different seed, different attack");

    let forensics_of = |text: &str| {
        let doc = wmx_xml::parse(text).unwrap();
        forensic_detection(&doc, &dataset, &dataset.config, &report, &key, &wm)
            .forensics
            .unwrap()
    };
    assert_eq!(forensics_of(&a), forensics_of(&attack(9)));

    // Byte-level attacks are seeded the same way.
    let serialized = wmx_xml::to_string(&marked);
    let garble = |seed: u64| {
        GarbleAttack::new(0.4, 300, GarbleMode::ScrambleDigits, seed).apply(&serialized)
    };
    assert_eq!(garble(5), garble(5));
    assert_ne!(garble(5), garble(6));
}

#[test]
fn redundant_embedding_recovers_attacked_units_and_repair_clears_them() {
    // γ=1 + redundancy 3: every unit is selected and every watermark
    // bit lands in three disjoint unit groups.
    let dataset = generate(&PublicationsConfig {
        records: 400,
        editors: 10,
        seed: 606,
        gamma: 1,
    });
    let config = dataset.config.clone().with_redundancy(3);
    let key = SecretKey::from_passphrase("recovery-suite");
    let wm = Watermark::from_message("© recover", 12);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &config,
        &key,
        &wm,
    )
    .unwrap();

    // Thin spread of parity flips across the year family.
    let mut attacked = marked.clone();
    let years = wmx_xpath::Query::compile("//book/year")
        .unwrap()
        .select(&attacked);
    assert!(!years.is_empty());
    for (i, node) in years.iter().enumerate() {
        if !i.is_multiple_of(9) {
            continue;
        }
        let year: i64 = node.string_value(&attacked).trim().parse().unwrap();
        write_value(&mut attacked, node, &(year + 7).to_string()).unwrap();
    }

    let detection = forensic_detection(&attacked, &dataset, &config, &report, &key, &wm);
    assert!(detection.detected);
    let forensics = detection.forensics.unwrap();
    assert!(forensics.tampered);
    assert!(
        forensics.recovered_units > 0,
        "the group decode must recover the damaged units"
    );
    assert_eq!(
        forensics.unrecoverable_units, 0,
        "thin damage stays recoverable"
    );

    // Repair re-embeds the expected bits; afterwards the forensics are
    // clean again and detection still succeeds.
    let mut repaired = attacked.clone();
    let repair = repair_document(
        &mut repaired,
        ForensicContext {
            binding: &dataset.binding,
            fds: &dataset.fds,
            config: &config,
        },
        &key,
        &wm,
    )
    .unwrap();
    assert!(repair.repaired_units > 0);
    assert_eq!(repair.unrecoverable_units, 0);
    let after = forensic_detection(&repaired, &dataset, &config, &report, &key, &wm);
    assert!(after.detected);
    let after_forensics = after.forensics.unwrap();
    assert!(!after_forensics.tampered, "repair must clear all suspects");
}
