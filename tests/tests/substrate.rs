//! Cross-substrate integration: the XML engine, query engine, schema
//! layer, and dataset generators working together, plus property tests
//! on the invariants the watermarking pipeline relies on.

use proptest::prelude::*;
use wmx_data::{jobs, library, publications};
use wmx_schema::{infer_schema, validate};
use wmx_xml::{parse, to_canonical_string, to_pretty_string, to_string};
use wmx_xpath::Query;

#[test]
fn generated_datasets_survive_serialize_parse_identically() {
    let docs = [
        publications::generate(&publications::PublicationsConfig {
            records: 60,
            editors: 5,
            seed: 1,
            gamma: 2,
        })
        .doc,
        jobs::generate(&jobs::JobsConfig {
            records: 60,
            companies: 5,
            seed: 2,
            gamma: 2,
        })
        .doc,
        library::generate(&library::LibraryConfig {
            records: 30,
            image_size: 8,
            seed: 3,
            gamma: 2,
        })
        .doc,
    ];
    for doc in docs {
        let compact = parse(&to_string(&doc)).unwrap();
        let pretty = parse(&to_pretty_string(&doc)).unwrap();
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&compact));
        assert_eq!(to_canonical_string(&doc), to_canonical_string(&pretty));
    }
}

#[test]
fn inferred_schemas_validate_their_sources() {
    let ds = publications::generate(&publications::PublicationsConfig {
        records: 80,
        editors: 6,
        seed: 4,
        gamma: 2,
    });
    let inferred = infer_schema(&ds.doc, "inferred-pubs");
    assert_eq!(validate(&ds.doc, &inferred), vec![]);
    // The hand-written schema also validates.
    assert_eq!(validate(&ds.doc, &ds.schema), vec![]);
}

#[test]
fn xpath_counts_agree_with_dom_walks() {
    let ds = jobs::generate(&jobs::JobsConfig {
        records: 100,
        companies: 7,
        seed: 5,
        gamma: 2,
    });
    let doc = &ds.doc;
    let via_query = Query::compile("//listing").unwrap().select(doc).len();
    let via_dom = doc
        .descendant_elements(doc.document_node())
        .filter(|&n| doc.name(n) == Some("listing"))
        .count();
    assert_eq!(via_query, via_dom);
    assert_eq!(via_query, 100);

    // count() agrees too.
    let count = Query::compile("count(//listing)")
        .unwrap()
        .evaluate(doc)
        .unwrap();
    assert_eq!(count, wmx_xpath::Value::Number(100.0));
}

#[test]
fn binding_accessors_agree_with_raw_queries() {
    let ds = publications::generate(&publications::PublicationsConfig {
        records: 40,
        editors: 4,
        seed: 6,
        gamma: 2,
    });
    let doc = &ds.doc;
    let entity = ds.binding.entity("book").unwrap();
    let instances = entity.instances(doc);
    for instance in instances.iter().take(10) {
        let key = entity.key_of(doc, instance).unwrap();
        let via_logical = wmx_rewrite::LogicalQuery::new("book", &key, "year")
            .compile(&ds.binding)
            .unwrap()
            .select_string(doc)
            .unwrap();
        let via_binding = entity.attr_value(doc, instance, "year").unwrap();
        assert_eq!(via_logical, via_binding);
    }
}

/// Strategy for small, well-formed documents built through the builder.
fn arb_doc() -> impl Strategy<Value = wmx_xml::Document> {
    let leaf_text = "[a-zA-Z0-9 .,!<>&'\"]{0,16}";
    (
        prop::collection::vec((leaf_text, any::<bool>()), 1..12),
        "[a-z][a-z0-9]{0,6}",
    )
        .prop_map(|(leaves, root_name)| {
            let mut root = wmx_xml::ElementBuilder::new(format!("r{root_name}"));
            for (i, (text, as_attr)) in leaves.into_iter().enumerate() {
                let child = wmx_xml::ElementBuilder::new(format!("c{i}"));
                root = if as_attr {
                    root.child(child.attr("v", text))
                } else {
                    root.child(child.text(text))
                };
            }
            root.into_document()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serialize_parse_is_identity_on_canonical_form(doc in arb_doc()) {
        let text = to_string(&doc);
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(to_canonical_string(&doc), to_canonical_string(&reparsed));
    }

    #[test]
    fn pretty_and_compact_forms_are_equivalent(doc in arb_doc()) {
        let a = parse(&to_string(&doc)).unwrap();
        let b = parse(&to_pretty_string(&doc)).unwrap();
        prop_assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn inferred_schema_always_validates_source(doc in arb_doc()) {
        let schema = infer_schema(&doc, "prop");
        prop_assert_eq!(validate(&doc, &schema), vec![]);
    }

    #[test]
    fn descendant_query_finds_every_element(doc in arb_doc()) {
        let all = Query::compile("//*").unwrap().select(&doc).len();
        prop_assert_eq!(all, doc.element_count());
    }
}
