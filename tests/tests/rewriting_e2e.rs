//! Cross-schema detection: the full Fig. 1 / Fig. 2 pipeline, plus
//! property-based checks that reorganization preserves logical records.

use proptest::prelude::*;
use wmx_attacks::{ReorganizationAttack, ShuffleAttack};
use wmx_core::{detect, embed, DetectionInput, Watermark};
use wmx_crypto::SecretKey;
use wmx_data::publications::{generate, PublicationsConfig};
use wmx_rewrite::binding::{AttrBinding, EntityBinding};
use wmx_rewrite::transform::{extract_records, FieldPlacement, Layout};
use wmx_rewrite::{SchemaBinding, SchemaMapping};

fn db2_binding() -> SchemaBinding {
    SchemaBinding::new(
        "publications-db2",
        vec![EntityBinding::new(
            "book",
            "/db/publisher/author/book",
            "title",
            vec![
                ("title", AttrBinding::Attribute("name".into())),
                ("year", AttrBinding::ChildText("published".into())),
                ("author", AttrBinding::Path("../@name".into())),
                ("publisher", AttrBinding::Path("../../@name".into())),
            ],
        )
        .unwrap()],
    )
}

fn db2_layout() -> Layout {
    Layout::GroupBy {
        attr: "publisher".into(),
        element: "publisher".into(),
        label: FieldPlacement::Attribute("name".into()),
        inner: Box::new(Layout::GroupBy {
            attr: "author".into(),
            element: "author".into(),
            label: FieldPlacement::Attribute("name".into()),
            inner: Box::new(Layout::Flat {
                record_element: "book".into(),
                fields: vec![
                    ("title".into(), FieldPlacement::Attribute("name".into())),
                    ("year".into(), FieldPlacement::ChildText("published".into())),
                ],
            }),
        }),
    }
}

#[test]
fn detection_after_full_reorganization_with_rewriting() {
    let dataset = generate(&PublicationsConfig {
        records: 300,
        editors: 9,
        seed: 1,
        gamma: 2,
    });
    let key = SecretKey::from_passphrase("fig2");
    let wm = Watermark::from_message("fig2-mark", 16);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();

    let mut reorganized = ReorganizationAttack::new("book", "db", db2_layout())
        .apply(&marked, &dataset.binding)
        .unwrap();
    ShuffleAttack::new(2).apply(&mut reorganized);

    let mapping = SchemaMapping::new(dataset.binding.clone(), db2_binding()).unwrap();
    let with = detect(
        &reorganized,
        &DetectionInput {
            queries: &report.queries,
            key: key.clone(),
            watermark: wm.clone(),
            threshold: 0.8,
            mapping: Some(&mapping),
        },
    );
    assert!(with.detected, "rewritten detection must succeed");
    assert_eq!(with.match_fraction(), 1.0);

    let without = detect(
        &reorganized,
        &DetectionInput {
            queries: &report.queries,
            key,
            watermark: wm,
            threshold: 0.8,
            mapping: None,
        },
    );
    assert!(!without.detected, "un-rewritten detection must fail");
    assert_eq!(without.located_queries, 0);
}

#[test]
fn round_trip_reorganization_detects_in_original_schema_again() {
    // db1 → db2 → db1: a thief restructures twice; detection with the
    // original (identity) binding works again without any mapping.
    let dataset = generate(&PublicationsConfig {
        records: 200,
        editors: 6,
        seed: 3,
        gamma: 2,
    });
    let key = SecretKey::from_passphrase("twice");
    let wm = Watermark::from_message("twice", 12);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key,
        &wm,
    )
    .unwrap();

    let reorganized = ReorganizationAttack::new("book", "db", db2_layout())
        .apply(&marked, &dataset.binding)
        .unwrap();
    let back = ReorganizationAttack::new(
        "book",
        "db",
        Layout::Flat {
            record_element: "book".into(),
            fields: vec![
                (
                    "publisher".into(),
                    FieldPlacement::Attribute("publisher".into()),
                ),
                ("title".into(), FieldPlacement::ChildText("title".into())),
                ("author".into(), FieldPlacement::ChildText("author".into())),
                ("year".into(), FieldPlacement::ChildText("year".into())),
            ],
        },
    )
    .apply(&reorganized, &db2_binding())
    .unwrap();

    let detection = detect(
        &back,
        &DetectionInput {
            queries: &report.queries,
            key,
            watermark: wm,
            threshold: 0.8,
            mapping: None,
        },
    );
    assert!(detection.detected, "double reorganization lost the mark");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn reorganization_preserves_shared_records(records in 5usize..60, seed in 0u64..1000) {
        let dataset = generate(&PublicationsConfig {
            records,
            editors: 4,
            seed,
            gamma: 2,
        });
        let original = extract_records(&dataset.doc, &dataset.binding, "book").unwrap();
        let reorganized = ReorganizationAttack::new("book", "db", db2_layout())
            .apply(&dataset.doc, &dataset.binding)
            .unwrap();
        let after = extract_records(&reorganized, &db2_binding(), "book").unwrap();

        let shared = ["title", "author", "publisher", "year"];
        let normalize = |mut rs: Vec<wmx_rewrite::Record>| {
            for r in rs.iter_mut() {
                for v in r.fields.values_mut() {
                    v.sort();
                }
            }
            rs.sort_by(|a, b| a.key.cmp(&b.key));
            rs
        };
        let a = normalize(original.iter().map(|r| r.project(&shared)).collect());
        let b = normalize(after.iter().map(|r| r.project(&shared)).collect());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn detection_with_stripped_logical_forms_uses_concrete_rewriting() {
    // Queries loaded from a `.wmxq` file carry no logical form; the
    // decoder must fall back to concrete pattern rewriting (recovering
    // the logical query from the XPath text against the source binding
    // is not available in that path, so rewrite_through handles it).
    let dataset = generate(&PublicationsConfig {
        records: 200,
        editors: 6,
        seed: 5,
        gamma: 2,
    });
    let key = SecretKey::from_passphrase("stripped");
    let wm = Watermark::from_message("stripped", 12);
    let mut marked = dataset.doc.clone();
    let report = embed(
        &mut marked,
        &dataset.binding,
        &[], // no FDs: keep every query key-identified (rewritable)
        &wmx_core::EncoderConfig::new(2, vec![wmx_core::MarkableAttr::integer("book", "year", 1)]),
        &key,
        &wm,
    )
    .unwrap();

    // Simulate a query-file round trip: logical forms are dropped.
    let stripped: Vec<wmx_core::StoredQuery> = report
        .queries
        .iter()
        .map(|q| wmx_core::StoredQuery {
            unit_id: q.unit_id.clone(),
            xpath: q.xpath.clone(),
            logical: None,
            mark: q.mark,
        })
        .collect();

    let reorganized = ReorganizationAttack::new("book", "db", db2_layout())
        .apply(&marked, &dataset.binding)
        .unwrap();
    let mapping = SchemaMapping::new(dataset.binding.clone(), db2_binding()).unwrap();

    let detection = detect(
        &reorganized,
        &DetectionInput {
            queries: &stripped,
            key,
            watermark: wm,
            threshold: 0.8,
            mapping: Some(&mapping),
        },
    );
    assert!(
        detection.detected,
        "concrete rewriting must recover detection (located {}/{})",
        detection.located_queries, detection.total_queries
    );
    assert_eq!(detection.unrewritable_queries, 0);
}
