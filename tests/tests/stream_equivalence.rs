//! Equivalence property suite: the streaming engine must be
//! indistinguishable from the DOM engine.
//!
//! * Embed: byte-identical output to `to_string(dom_embedded)` on every
//!   generated corpus (publications, jobs, library), both pretty and
//!   compact inputs, sequential and parallel, plus adversarial documents
//!   (CDATA, mixed content, deep nesting, comments, entities).
//! * Detect: identical per-bit vote tallies and match ratio on marked
//!   corpora, and the stream-produced query set equals the DOM query set
//!   as a set (so either engine's artifacts drive the other's decoder).
//! * Memory: the streaming engine never materializes more than
//!   O(depth + one record) nodes (asserted via the resident-node
//!   high-water mark vs the full DOM arena).

use proptest::prelude::*;
use wmx_attacks::{AlterationAttack, GarbleAttack, GarbleMode, ShuffleAttack, TruncationAttack};
use wmx_core::{
    detect, detect_forensic, embed, DetectionInput, ForensicContext, ForensicsReport, StoredQuery,
    Watermark,
};
use wmx_crypto::SecretKey;
use wmx_data::{jobs, library, publications, Dataset};
use wmx_stream::{
    par_detect, par_detect_forensic, par_embed, stream_detect, stream_detect_forensic,
    stream_embed, StreamContext,
};
use wmx_xml::{parse, to_pretty_string, to_string};

fn datasets() -> Vec<Dataset> {
    vec![
        publications::generate(&publications::PublicationsConfig {
            records: 220,
            editors: 9,
            seed: 41,
            gamma: 3,
        }),
        jobs::generate(&jobs::JobsConfig {
            records: 220,
            companies: 8,
            seed: 42,
            gamma: 3,
        }),
        library::generate(&library::LibraryConfig {
            records: 120,
            image_size: 12,
            seed: 43,
            gamma: 2,
        }),
    ]
}

fn ctx(dataset: &Dataset) -> StreamContext<'_> {
    StreamContext {
        binding: &dataset.binding,
        fds: &dataset.fds,
        config: &dataset.config,
    }
}

fn key() -> SecretKey {
    SecretKey::from_passphrase("equivalence-key")
}

fn wm() -> Watermark {
    Watermark::from_message("© equivalence", 24)
}

/// DOM reference pipeline for a serialized input: parse → embed →
/// compact serialize.
fn dom_embed_bytes(input: &str, dataset: &Dataset) -> (String, wmx_core::EmbedReport) {
    let mut doc = parse(input).expect("reference parse");
    let report = embed(
        &mut doc,
        &dataset.binding,
        &dataset.fds,
        &dataset.config,
        &key(),
        &wm(),
    )
    .expect("reference embed");
    (to_string(&doc), report)
}

fn query_set(queries: &[StoredQuery]) -> std::collections::BTreeSet<(String, String)> {
    queries
        .iter()
        .map(|q| (q.unit_id.clone(), q.xpath.clone()))
        .collect()
}

#[test]
fn embed_is_byte_identical_on_every_corpus() {
    for dataset in datasets() {
        // Both serialization conventions must stream identically: the
        // CLI generates pretty files, tests often use compact ones.
        for input in [to_string(&dataset.doc), to_pretty_string(&dataset.doc)] {
            let (dom_out, dom_report) = dom_embed_bytes(&input, &dataset);
            let mut stream_out = Vec::new();
            let stream_report = stream_embed(
                input.as_bytes(),
                &mut stream_out,
                ctx(&dataset),
                &key(),
                &wm(),
            )
            .unwrap_or_else(|e| panic!("{}: stream embed failed: {e}", dataset.name));
            assert_eq!(
                String::from_utf8(stream_out).unwrap(),
                dom_out,
                "{}: streaming bytes diverge from DOM bytes",
                dataset.name
            );
            assert_eq!(
                stream_report.report.total_units, dom_report.total_units,
                "{}: total units",
                dataset.name
            );
            assert_eq!(
                stream_report.report.selected_units, dom_report.selected_units,
                "{}: selected units",
                dataset.name
            );
            assert_eq!(
                stream_report.report.marked_units, dom_report.marked_units,
                "{}: marked units",
                dataset.name
            );
            assert_eq!(
                stream_report.report.marked_nodes, dom_report.marked_nodes,
                "{}: marked nodes",
                dataset.name
            );
            assert_eq!(
                query_set(&stream_report.report.queries),
                query_set(&dom_report.queries),
                "{}: safeguarded query sets differ",
                dataset.name
            );
        }
    }
}

#[test]
fn parallel_chunking_is_deterministic() {
    for dataset in datasets() {
        let input = to_string(&dataset.doc);
        let mut seq_out = Vec::new();
        let seq_report =
            stream_embed(input.as_bytes(), &mut seq_out, ctx(&dataset), &key(), &wm()).unwrap();
        let seq_out = String::from_utf8(seq_out).unwrap();
        for workers in [2usize, 3, 8] {
            let (par_out, par_report) =
                par_embed(&input, workers, ctx(&dataset), &key(), &wm()).unwrap();
            assert_eq!(par_out, seq_out, "{} workers={workers}", dataset.name);
            assert_eq!(
                par_report.report.marked_units, seq_report.report.marked_units,
                "{} workers={workers}",
                dataset.name
            );
            assert_eq!(
                query_set(&par_report.report.queries),
                query_set(&seq_report.report.queries),
                "{} workers={workers}",
                dataset.name
            );
        }
    }
}

#[test]
fn detect_votes_and_ratio_match_the_dom_decoder() {
    for dataset in datasets() {
        let input = to_string(&dataset.doc);
        let (marked, dom_report) = dom_embed_bytes(&input, &dataset);

        // DOM decoder over the safeguarded query set.
        let marked_doc = parse(&marked).unwrap();
        let dom_detect = detect(
            &marked_doc,
            &DetectionInput {
                queries: &dom_report.queries,
                key: key(),
                watermark: wm(),
                threshold: 0.85,
                mapping: None,
            },
        );
        assert!(dom_detect.detected, "{}", dataset.name);
        assert_eq!(dom_detect.match_fraction(), 1.0, "{}", dataset.name);

        // Streaming decoder: no query set, same votes.
        let stream = stream_detect(marked.as_bytes(), ctx(&dataset), &key(), &wm(), 0.85)
            .unwrap_or_else(|e| panic!("{}: stream detect failed: {e}", dataset.name));
        assert!(stream.report.detected, "{}", dataset.name);
        assert_eq!(
            stream.report.match_fraction(),
            dom_detect.match_fraction(),
            "{}: match ratio diverges",
            dataset.name
        );
        assert_eq!(
            stream.report.bit_votes, dom_detect.bit_votes,
            "{}: per-bit vote tallies diverge",
            dataset.name
        );
        assert_eq!(
            stream.report.votes_cast, dom_detect.votes_cast,
            "{}",
            dataset.name
        );

        // Parallel detection merges to the same tally.
        let par = par_detect(&marked, 4, ctx(&dataset), &key(), &wm(), 0.85).unwrap();
        assert_eq!(
            par.report.bit_votes, stream.report.bit_votes,
            "{}",
            dataset.name
        );

        // Wrong key: both engines reject.
        let wrong = stream_detect(
            marked.as_bytes(),
            ctx(&dataset),
            &SecretKey::from_passphrase("intruder"),
            &wm(),
            0.85,
        )
        .unwrap();
        assert!(
            !wrong.report.detected,
            "{}: wrong key detected",
            dataset.name
        );
    }
}

#[test]
fn streaming_memory_stays_bounded_by_one_record() {
    let dataset = publications::generate(&publications::PublicationsConfig {
        records: 2000,
        editors: 25,
        seed: 44,
        gamma: 3,
    });
    let input = to_string(&dataset.doc);
    let full_nodes = parse(&input).unwrap().arena_len();
    let mut out = Vec::new();
    let report = stream_embed(input.as_bytes(), &mut out, ctx(&dataset), &key(), &wm()).unwrap();
    assert_eq!(report.records, 2000);
    // O(depth + one record): three orders of magnitude below the DOM.
    assert!(
        report.peak_resident_nodes * 100 < full_nodes,
        "peak resident {} vs full DOM {}",
        report.peak_resident_nodes,
        full_nodes
    );
}

/// A small custom semantic package for hand-written adversarial docs.
fn adversarial_package() -> (wmx_rewrite::SchemaBinding, wmx_core::EncoderConfig) {
    use wmx_core::{EncoderConfig, MarkableAttr};
    use wmx_rewrite::binding::{AttrBinding, EntityBinding};
    let binding = wmx_rewrite::SchemaBinding::new(
        "adv",
        vec![EntityBinding::new(
            "book",
            "/db/book",
            "title",
            vec![
                ("title", AttrBinding::ChildText("title".into())),
                ("year", AttrBinding::ChildText("year".into())),
                ("note", AttrBinding::ChildText("note".into())),
                ("author", AttrBinding::ChildText("author".into())),
            ],
        )
        .unwrap()],
    );
    let config = EncoderConfig::new(
        1,
        vec![
            MarkableAttr::integer("book", "year", 1),
            MarkableAttr::text("book", "note"),
        ],
    )
    .with_structural("book", "author");
    (binding, config)
}

#[test]
fn adversarial_documents_stream_identically() {
    let (binding, config) = adversarial_package();
    let ctx = StreamContext {
        binding: &binding,
        fds: &[],
        config: &config,
    };
    let deep = {
        // Deep nesting inside a record (300 levels) around a marked value.
        let mut s = String::from("<db><book><title>deep</title><year>1998</year><note>n</note>");
        for i in 0..300 {
            s.push_str(&format!("<n{i}>"));
        }
        s.push_str("leaf");
        for i in (0..300).rev() {
            s.push_str(&format!("</n{i}>"));
        }
        s.push_str("</book></db>");
        s
    };
    let cases: Vec<String> = vec![
        // CDATA inside a marked value and at record level.
        "<db><book><title>c1</title><year>2001</year><note><![CDATA[a<b&c]]></note></book>\
         <![CDATA[stray]]></db>"
            .into(),
        // Mixed content between records, comments, PIs, entities.
        "<?xml version=\"1.0\"?><!-- head --><db owner=\"a&amp;b\">intro \
         <book><title>m&amp;m</title><year>1999</year><note>x &lt; y</note></book>\
         <?app run?>outro<!-- mid --></db><!-- tail -->"
            .into(),
        // Multi-author order marks + self-closing records.
        "<db><book><title>o</title><year>2000</year><note>t</note>\
         <author>Zed</author><author>Ann</author></book><marker/>\
         <book><title>p</title><year>2002</year><note>u</note>\
         <author>Bo</author><author>Cy</author></book></db>"
            .into(),
        deep,
        // Unicode content and attribute entities.
        "<db><book lang=\"中文\"><title>Ünïcode – √</title><year>2003</year>\
         <note>naïve &#65;Z</note></book></db>"
            .into(),
    ];
    for input in cases {
        let mut dom = parse(&input).unwrap_or_else(|e| panic!("parse {input:?}: {e}"));
        let dom_report = embed(&mut dom, &binding, &[], &config, &key(), &wm())
            .unwrap_or_else(|e| panic!("dom embed {input:?}: {e}"));
        let dom_out = to_string(&dom);

        let mut stream_out = Vec::new();
        let stream_report = stream_embed(input.as_bytes(), &mut stream_out, ctx, &key(), &wm())
            .unwrap_or_else(|e| panic!("stream embed {input:?}: {e}"));
        assert_eq!(
            String::from_utf8(stream_out).unwrap(),
            dom_out,
            "bytes diverge for {input:?}"
        );
        assert_eq!(
            query_set(&stream_report.report.queries),
            query_set(&dom_report.queries),
            "query sets diverge for {input:?}"
        );

        // Detection parity on the marked bytes.
        let marked_doc = parse(&dom_out).unwrap();
        let dom_detect = detect(
            &marked_doc,
            &DetectionInput {
                queries: &dom_report.queries,
                key: key(),
                watermark: wm(),
                threshold: 0.85,
                mapping: None,
            },
        );
        let stream = stream_detect(dom_out.as_bytes(), ctx, &key(), &wm(), 0.85).unwrap();
        assert_eq!(
            stream.report.bit_votes, dom_detect.bit_votes,
            "votes diverge for {input:?}"
        );
    }
}

/// DOM reference forensics for a (possibly attacked) serialized
/// document.
fn dom_forensics(text: &str, dataset: &Dataset, queries: &[StoredQuery]) -> ForensicsReport {
    let doc = parse(text).expect("attacked document still parses");
    let report = detect_forensic(
        &doc,
        &DetectionInput {
            queries,
            key: key(),
            watermark: wm(),
            threshold: 0.85,
            mapping: None,
        },
        ForensicContext {
            binding: &dataset.binding,
            fds: &dataset.fds,
            config: &dataset.config,
        },
    )
    .expect("forensic detect");
    report.forensics.expect("forensics attached")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On attacked corpora, the per-record forensics — unit tallies,
    /// statuses, record rollups, the lot — are invariant across the DOM
    /// decoder, the sequential stream decoder, and every parallel
    /// worker count.
    #[test]
    fn forensics_are_engine_and_worker_invariant_on_attacked_corpora(
        seed in 0u64..1000,
        attack in 0usize..3,
    ) {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records: 80,
            editors: 6,
            seed: 4600 + seed,
            gamma: 3,
        });
        let input = to_string(&dataset.doc);
        let (marked, report) = dom_embed_bytes(&input, &dataset);
        let attacked = match attack {
            0 => {
                // Seeded value alteration on the marked year family.
                let mut doc = parse(&marked).unwrap();
                AlterationAttack::values(0.15, vec!["//book/year".to_string()], seed)
                    .apply(&mut doc);
                to_string(&doc)
            }
            1 => {
                // Seeded digit garbling at a seed-dependent offset.
                let offset = 0.2 + (seed % 6) as f64 * 0.1;
                String::from_utf8(
                    GarbleAttack::new(offset, 400, GarbleMode::ScrambleDigits, seed)
                        .apply(&marked),
                )
                .unwrap()
            }
            _ => {
                // Seeded record shuffle: localization is order-free.
                let mut doc = parse(&marked).unwrap();
                ShuffleAttack::new(seed).apply(&mut doc);
                to_string(&doc)
            }
        };

        let reference = dom_forensics(&attacked, &dataset, &report.queries);
        let seq =
            stream_detect_forensic(attacked.as_bytes(), ctx(&dataset), &key(), &wm(), 0.85)
                .unwrap();
        prop_assert!(seq.fault.is_none());
        prop_assert_eq!(seq.report.forensics.as_ref().unwrap(), &reference);
        for workers in [2usize, 3, 5, 8] {
            let par =
                par_detect_forensic(&attacked, workers, ctx(&dataset), &key(), &wm(), 0.85)
                    .unwrap();
            prop_assert!(par.fault.is_none());
            prop_assert_eq!(par.report.forensics.as_ref().unwrap(), &reference);
        }
    }

    /// Truncating the stream at an arbitrary byte yields a partial
    /// verdict over the salvaged prefix — never an error, never a panic
    /// — and the sequential and parallel drivers salvage identically.
    #[test]
    fn truncation_yields_identical_partial_verdicts(keep_pct in 15u32..95) {
        let dataset = publications::generate(&publications::PublicationsConfig {
            records: 100,
            editors: 5,
            seed: 47,
            gamma: 3,
        });
        let input = to_string(&dataset.doc);
        let (marked, _) = dom_embed_bytes(&input, &dataset);
        let cut = TruncationAttack::new(keep_pct as f64 / 100.0).apply(&marked);

        let seq =
            stream_detect_forensic(cut.as_bytes(), ctx(&dataset), &key(), &wm(), 0.85).unwrap();
        let fault = seq.fault.clone().expect("truncation must be reported");
        prop_assert!(fault.truncated);
        prop_assert!(seq.records < 100);
        prop_assert_eq!(fault.records_processed, seq.records);
        for workers in [2usize, 5] {
            let par = par_detect_forensic(&cut, workers, ctx(&dataset), &key(), &wm(), 0.85)
                .unwrap();
            prop_assert_eq!(par.records, seq.records);
            prop_assert_eq!(&par.report.bit_votes, &seq.report.bit_votes);
            prop_assert_eq!(&par.report.forensics, &seq.report.forensics);
            prop_assert!(par.fault.as_ref().is_some_and(|f| f.truncated));
        }
    }
}

/// A reader yielding at most 5 bytes per call: the pull parser must
/// resume across arbitrary buffer boundaries without changing output.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
}

impl std::io::Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let take = 5usize.min(self.data.len() - self.pos).min(buf.len());
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

#[test]
fn chunked_reads_do_not_change_output() {
    let dataset = publications::generate(&publications::PublicationsConfig {
        records: 40,
        editors: 5,
        seed: 45,
        gamma: 2,
    });
    let input = to_pretty_string(&dataset.doc);
    let mut whole = Vec::new();
    stream_embed(input.as_bytes(), &mut whole, ctx(&dataset), &key(), &wm()).unwrap();
    let mut trickled = Vec::new();
    let src = std::io::BufReader::with_capacity(
        7,
        Trickle {
            data: input.as_bytes(),
            pos: 0,
        },
    );
    stream_embed(src, &mut trickled, ctx(&dataset), &key(), &wm()).unwrap();
    assert_eq!(whole, trickled);
}
